"""Runtime-sanitizer tests: each sanitizer must fire on a violating input
and stay silent on a clean run."""

import heapq

import pytest

from repro.analysis.sanitizers import check_determinism, result_digest
from repro.config.system import SystemConfig
from repro.errors import (
    BufferLeakError,
    ConservationError,
    DeterminismError,
    EventOrderError,
    SanitizerError,
)
from repro.noc.messages import Message, MessageKind
from repro.noc.network import MeshNetwork
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator
from repro.sim.queueing import FiniteBuffer
from repro.system.runner import run_benchmark


def make_message(src, dst, size=64):
    return Message(
        kind=MessageKind.TRANSLATION_REQ,
        src=src,
        dst=dst,
        size_bytes=size,
    )


# ----------------------------------------------------------------------
# EventOrderSanitizer
# ----------------------------------------------------------------------
class TestEventOrder:
    def test_schedule_in_past_raises_typed_error(self):
        sim = Simulator(sanitize=True)
        sim.schedule(10, lambda: None)
        sim.step()
        assert sim.now == 10
        with pytest.raises(EventOrderError):
            sim.schedule_at(5, lambda: None)

    def test_direct_heap_corruption_caught_on_pop(self):
        # A buggy component that bypasses schedule_at and pushes a stale
        # timestamp straight into the heap is caught by the monotonicity
        # check the moment the event pops.
        sim = Simulator(sanitize=True)

        def corrupt():
            heapq.heappush(sim._queue, (3, 10_000, lambda: None))

        sim.schedule(10, corrupt)
        with pytest.raises(EventOrderError, match="monotonicity"):
            sim.run()

    def test_unsanitized_simulator_keeps_legacy_behaviour(self):
        sim = Simulator()
        assert sim.sanitizer is None
        sim.schedule(1, lambda: None)
        assert sim.run() == 1


# ----------------------------------------------------------------------
# BufferLeakSanitizer
# ----------------------------------------------------------------------
class TestBufferLeak:
    def test_leaked_entry_raises_at_quiesce(self):
        sim = Simulator(sanitize=True)
        buffer = FiniteBuffer(sim, "toy_buffer", capacity=4)
        buffer.push("stuck")
        sim.schedule(5, lambda: None)
        with pytest.raises(BufferLeakError, match="toy_buffer holds 1"):
            sim.run()

    def test_drained_buffer_is_clean(self):
        sim = Simulator(sanitize=True)
        buffer = FiniteBuffer(sim, "toy_buffer", capacity=4)
        buffer.push("transient")
        sim.schedule(5, buffer.pop)
        sim.run()
        assert sim.sanitizer.report()["buffers_watched"] == 1

    def test_truncated_run_skips_quiesce_checks(self):
        # Truncation legitimately strands buffer entries; the leak check
        # must not fire for a run cut off at max_cycles.
        sim = Simulator(max_cycles=3, sanitize=True)
        buffer = FiniteBuffer(sim, "toy_buffer", capacity=4)
        buffer.push("stranded")
        sim.schedule(10, buffer.pop)
        sim.run()
        assert sim.truncated


# ----------------------------------------------------------------------
# ConservationSanitizer
# ----------------------------------------------------------------------
class TestConservation:
    def _network(self, sim):
        network = MeshNetwork(sim, MeshTopology(3, 3))
        network.attach((1, 0), lambda message: None)
        return network

    def test_byte_count_mismatch_raises(self):
        sim = Simulator(sanitize=True)
        network = self._network(sim)
        network.send(make_message((0, 0), (1, 0)))
        # A toy component corrupts the link's byte counter out of band.
        link = network._links[((0, 0), (1, 0))]
        link.bytes_carried += 7
        with pytest.raises(ConservationError, match="drifted"):
            sim.run()

    def test_undelivered_message_raises(self):
        sim = Simulator(sanitize=True)
        network = self._network(sim)
        network.send(make_message((0, 0), (1, 0)))
        # Simulate a lost delivery: drop the pending event, then quiesce.
        sim._queue.clear()
        with pytest.raises(ConservationError, match="in flight"):
            sim.sanitizer.at_quiesce()

    def test_clean_traffic_passes(self):
        sim = Simulator(sanitize=True)
        network = self._network(sim)
        network.send(make_message((0, 0), (1, 0)))
        network.send(make_message((0, 0), (1, 0), size=256))
        sim.run()
        report = sim.sanitizer.report()
        assert report["messages_delivered"] == 2
        assert report["quiesce_checks_run"] == 1


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_dual_run_mismatch_raises(self):
        class WobblyResult:
            def __init__(self, value):
                self.value = value

            def to_dict(self):
                return {"value": self.value}

        calls = []

        def wobbly_run(config, workload, **kwargs):
            calls.append(workload)
            return WobblyResult(len(calls))  # differs every run

        with pytest.raises(DeterminismError, match="diverged"):
            check_determinism(
                SystemConfig(mesh_width=3, mesh_height=3),
                "fir",
                run_fn=wobbly_run,
            )
        assert len(calls) == 2

    def test_real_small_run_is_deterministic(self):
        digest = check_determinism(
            SystemConfig(mesh_width=3, mesh_height=3), "fir",
            scale=0.02, seed=7,
        )
        assert len(digest) == 64

    def test_result_digest_is_canonical(self):
        assert result_digest({"b": 1, "a": 2}) == result_digest({"a": 2, "b": 1})
        assert result_digest({"a": 1}) != result_digest({"a": 2})


# ----------------------------------------------------------------------
# End-to-end: a sanitized preset run is clean
# ----------------------------------------------------------------------
class TestSanitizedRun:
    def test_small_preset_runs_clean(self):
        result = run_benchmark(
            SystemConfig(mesh_width=5, mesh_height=5), "fir",
            scale=0.05, seed=42, sanitize=True,
        )
        report = result.extras["sanitizers"]
        assert report["violations"] == 0
        assert report["events_checked"] > 0
        assert report["messages_delivered"] > 0
        assert report["buffers_watched"] >= 1
        assert report["quiesce_checks_run"] == 1

    def test_all_sanitizer_errors_are_typed(self):
        for error in (EventOrderError, ConservationError, BufferLeakError,
                      DeterminismError):
            assert issubclass(error, SanitizerError)
