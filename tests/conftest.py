"""Shared fixtures: small, fast system configurations."""

from __future__ import annotations

import pytest

from repro.config.gpm import GPMConfig, TLBConfig
from repro.config.hdpat import HDPATConfig
from repro.config.iommu import IOMMUConfig
from repro.config.system import SystemConfig
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tiny_gpm_config() -> GPMConfig:
    """A deliberately small GPM so capacity effects appear in tests."""
    return GPMConfig(
        name="tiny",
        num_cus=4,
        l1_vector_tlb=TLBConfig(1, 8, 4, 4),
        l1_scalar_tlb=TLBConfig(1, 8, 4, 4),
        l1_inst_tlb=TLBConfig(1, 8, 4, 4),
        l2_tlb=TLBConfig(8, 8, 8, 32),
        gmmu_cache=TLBConfig(8, 4, 4, 8),
        gmmu_walkers=2,
        walk_latency=100,
        cuckoo_capacity=4096,
        outstanding_per_cu=4,
        issue_width=2,
    )


@pytest.fixture
def small_system_config(tiny_gpm_config) -> SystemConfig:
    """A 3x3 wafer (8 GPMs) with small structures — fast to simulate."""
    return SystemConfig(
        mesh_width=3,
        mesh_height=3,
        gpm=tiny_gpm_config,
        iommu=IOMMUConfig(
            num_walkers=4,
            walk_latency=100,
            buffer_capacity=256,
            pw_queue_capacity=8,
            redirection_entries=64,
        ),
    )


@pytest.fixture
def small_hdpat_config(small_system_config) -> SystemConfig:
    from dataclasses import replace

    # A 3x3 mesh has a single complete ring, so C=1.
    return small_system_config.with_hdpat(
        replace(HDPATConfig.full(), num_layers=1)
    )


@pytest.fixture
def wafer_5x5_config(tiny_gpm_config) -> SystemConfig:
    """A 5x5 wafer (24 GPMs, two complete rings) for HDPAT-layer tests."""
    return SystemConfig(
        mesh_width=5,
        mesh_height=5,
        gpm=tiny_gpm_config,
        iommu=IOMMUConfig(
            num_walkers=4,
            walk_latency=100,
            buffer_capacity=256,
            pw_queue_capacity=8,
            redirection_entries=64,
        ),
    )
