"""A deliberately racy ticker pair — the race detector's seeded fixture.

``RacyCounter`` schedules two callbacks into the *same* cycle that both
write ``value`` and ``last_writer``: starting from 0, ``tick_double``
then ``tick_bump`` leaves ``value == (0 * 2) + 3 == 3`` while the
reverse order leaves ``(0 + 3) * 2 == 6`` — the result depends only on
insertion ``seq``, which is exactly the conflict both detector halves
exist to flag.  The static pass must see the write-write pairs through
``tick_bump``'s one level of indirection (``_bump_value``); the dynamic
``RaceSanitizer`` must raise :class:`~repro.errors.OrderRaceError` when
a simulation actually dispatches the pair.
"""

from repro.sim.component import Component


class RacyCounter(Component):
    """Two same-cycle tickers racing on ``value`` and ``last_writer``."""

    def __init__(self, sim, name="racy"):
        super().__init__(sim, name)
        self.value = 0
        self.last_writer = "init"

    def start(self, cycles=3):
        """Schedule both tickers into each of the next ``cycles`` cycles."""
        for delay in range(1, cycles + 1):
            self.sim.schedule(delay, self.tick_double)
            self.sim.schedule(delay, self.tick_bump)

    def tick_double(self):
        self.value = self.value * 2
        self.last_writer = "double"

    def tick_bump(self):
        self._bump_value()
        self.last_writer = "bump"

    def _bump_value(self):
        self.value = self.value + 3
