"""Seeded-defect fixtures for the analysis tooling tests.

Modules here contain *deliberate* violations (e.g. the racy ticker pair
in :mod:`tests.fixtures.racy_ticker`); they are imported by tests only
and must never be linted as part of the shipped tree.
"""
