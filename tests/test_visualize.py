"""Tests for the ASCII wafer visualisation."""

import pytest

from repro.noc.topology import MeshTopology
from repro.system.visualize import ring_summary, wafer_heatmap


@pytest.fixture
def topology():
    return MeshTopology(5, 5)


class TestHeatmap:
    def test_renders_all_rows_and_marks_cpu(self, topology):
        text = wafer_heatmap(topology, list(range(24)), title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 1 + 5 + 1  # title + grid + scale line
        assert "[CPU]" in text

    def test_extreme_values_use_extreme_shades(self, topology):
        values = [0.0] * 23 + [100.0]
        text = wafer_heatmap(topology, values)
        assert "@@@" in text  # the single hot tile
        assert "   " in text  # cold tiles

    def test_uniform_values_do_not_crash(self, topology):
        text = wafer_heatmap(topology, [5.0] * 24)
        assert "[CPU]" in text

    def test_wrong_value_count_rejected(self, topology):
        with pytest.raises(ValueError):
            wafer_heatmap(topology, [1.0] * 10)

    def test_custom_cpu_marker(self, topology):
        text = wafer_heatmap(topology, [1.0] * 24, cpu_marker="IOMMU")
        assert "[IOMMU]" in text


class TestRingSummary:
    def test_rings_and_counts(self, topology):
        summary = ring_summary(topology, [1.0] * 24)
        assert [(ring, count) for ring, count, _mean in summary] == [
            (1, 8), (2, 16),
        ]

    def test_means_by_ring(self, topology):
        values = [
            float(topology.chebyshev_from_cpu(t.coordinate))
            for t in topology.gpm_tiles
        ]
        summary = ring_summary(topology, values)
        assert summary[0][2] == pytest.approx(1.0)
        assert summary[1][2] == pytest.approx(2.0)

    def test_wrong_value_count_rejected(self, topology):
        with pytest.raises(ValueError):
            ring_summary(topology, [1.0])
