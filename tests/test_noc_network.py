"""Tests for the mesh network: delivery latency, contention, traffic."""

import pytest

from repro.errors import RoutingError
from repro.noc.messages import Message, MessageKind
from repro.noc.network import MeshNetwork
from repro.noc.topology import MeshTopology


@pytest.fixture
def network(sim):
    return MeshNetwork(sim, MeshTopology(5, 5), link_latency=32)


def _msg(src, dst, kind=MessageKind.TRANSLATION_REQ, size=None):
    return Message(kind, src=src, dst=dst, payload=None, size_bytes=size)


class TestDelivery:
    def test_latency_scales_with_hops(self, sim, network):
        delivered = []
        network.send(_msg((0, 0), (3, 0)), lambda m: delivered.append(sim.now))
        sim.run()
        assert delivered == [3 * 32]

    def test_zero_hop_delivers_next_cycle(self, sim, network):
        delivered = []
        network.send(_msg((1, 1), (1, 1)), lambda m: delivered.append(sim.now))
        sim.run()
        assert delivered == [1]

    def test_attached_handler_receives(self, sim, network):
        received = []
        network.attach((2, 2), lambda m: received.append(m))
        message = _msg((0, 0), (2, 2))
        network.send(message)
        sim.run()
        assert received == [message]

    def test_missing_handler_raises(self, network):
        with pytest.raises(RoutingError):
            network.send(_msg((0, 0), (4, 4)))

    def test_off_mesh_destination_raises(self, network):
        with pytest.raises(RoutingError):
            network.send(_msg((0, 0), (99, 0)))

    def test_explicit_handler_overrides_attached(self, sim, network):
        network.attach((2, 2), lambda m: pytest.fail("should not be called"))
        got = []
        network.send(_msg((0, 0), (2, 2)), lambda m: got.append(m))
        sim.run()
        assert len(got) == 1


class TestContention:
    def test_large_messages_serialize_on_shared_link(self, sim):
        # Narrow link: 8 bytes/cycle, so a 64-byte message holds the link
        # for 8 cycles and a burst must serialize.
        network = MeshNetwork(
            sim, MeshTopology(3, 3), link_latency=10,
            link_bandwidth_bytes_per_sec=8e9,
        )
        times = []
        for _ in range(3):
            network.send(
                _msg((0, 0), (1, 0), size=64), lambda m: times.append(sim.now)
            )
        sim.run()
        assert times == [10, 18, 26]
        assert network.link_wait_cycles() > 0

    def test_disjoint_links_do_not_contend(self, sim):
        network = MeshNetwork(
            sim, MeshTopology(3, 3), link_latency=10,
            link_bandwidth_bytes_per_sec=8e9,
        )
        times = []
        network.send(_msg((0, 0), (1, 0), size=64), lambda m: times.append(sim.now))
        network.send(_msg((0, 1), (1, 1), size=64), lambda m: times.append(sim.now))
        sim.run()
        assert times == [10, 10]


class TestTraffic:
    def test_total_bytes_counts_bytes_times_hops(self, sim, network):
        network.send(_msg((0, 0), (2, 0), size=100), lambda m: None)
        sim.run()
        assert network.total_link_bytes() == 200

    def test_translation_traffic_separated(self, sim, network):
        network.send(
            _msg((0, 0), (1, 0), kind=MessageKind.DATA_RESP, size=80),
            lambda m: None,
        )
        network.send(
            _msg((0, 0), (1, 0), kind=MessageKind.TRANSLATION_REQ, size=16),
            lambda m: None,
        )
        sim.run()
        assert network.total_link_bytes() == 96
        assert network.translation_link_bytes() == 16

    def test_mean_hops(self, sim, network):
        network.send(_msg((0, 0), (2, 0)), lambda m: None)
        network.send(_msg((0, 0), (4, 0)), lambda m: None)
        sim.run()
        assert network.mean_hops() == pytest.approx(3.0)

    def test_mean_hops_excludes_zero_hop_sends(self, sim, network):
        network.send(_msg((0, 0), (2, 0)), lambda m: None)  # 2 hops
        network.send(_msg((0, 0), (4, 0)), lambda m: None)  # 4 hops
        network.send(_msg((1, 1), (1, 1)), lambda m: None)  # local, 0 hops
        sim.run()
        assert network.messages_sent == 3
        assert network.messages_routed == 2
        assert network.mean_hops() == pytest.approx(3.0)

    def test_mean_hops_all_local_is_zero(self, sim, network):
        network.send(_msg((1, 1), (1, 1)), lambda m: None)
        sim.run()
        assert network.messages_routed == 0
        assert network.mean_hops() == 0.0


class TestMessageDefaults:
    def test_default_sizes_by_kind(self):
        assert _msg((0, 0), (1, 0)).size_bytes == 16
        data = Message(MessageKind.DATA_RESP, (0, 0), (1, 0))
        assert data.size_bytes == 80

    def test_translation_kind_classification(self):
        assert Message(MessageKind.PTE_PUSH, (0, 0), (1, 0)).is_translation_traffic
        assert not Message(MessageKind.DATA_REQ, (0, 0), (1, 0)).is_translation_traffic

    def test_message_ids_unique(self):
        a = _msg((0, 0), (1, 0))
        b = _msg((0, 0), (1, 0))
        assert a.message_id != b.message_id


class TestTrafficReport:
    def test_per_kind_accounting(self, sim, network):
        network.send(
            _msg((0, 0), (2, 0), kind=MessageKind.DATA_RESP, size=80),
            lambda m: None,
        )
        network.send(
            _msg((0, 0), (1, 0), kind=MessageKind.TRANSLATION_REQ, size=16),
            lambda m: None,
        )
        sim.run()
        report = network.traffic_report()
        assert report["data_resp"]["messages"] == 1
        assert report["data_resp"]["link_bytes"] == 160  # 80 B x 2 hops
        assert report["translation_req"]["link_bytes"] == 16
        assert report["total"]["messages"] == 2
        assert report["total"]["link_bytes"] == 176

    def test_zero_hop_messages_carry_no_link_bytes(self, sim, network):
        network.send(_msg((1, 1), (1, 1)), lambda m: None)
        sim.run()
        report = network.traffic_report()
        assert report["total"]["link_bytes"] == 0
        assert report["translation_req"]["messages"] == 1
