"""Tests for the memory substrate: addresses, page tables, allocator, HBM."""

import pytest

from repro.errors import AddressError
from repro.mem.address import (
    PAGE_SIZE_4K,
    PAGE_SIZE_16K,
    PAGE_SIZE_64K,
    AddressSpace,
)
from repro.mem.allocator import PageAllocator
from repro.mem.hbm import HBMModel
from repro.mem.page import PageTableEntry
from repro.mem.page_table import (
    LEAF_LINE_SPAN,
    WALK_LEVELS,
    GlobalPageTable,
    LocalPageTable,
)


class TestAddressSpace:
    def test_vpn_and_offset(self):
        space = AddressSpace(PAGE_SIZE_4K)
        vaddr = 5 * 4096 + 123
        assert space.vpn_of(vaddr) == 5
        assert space.offset_of(vaddr) == 123

    def test_base_of_roundtrip(self):
        space = AddressSpace(PAGE_SIZE_16K)
        assert space.vpn_of(space.base_of(77)) == 77

    def test_pages_for_bytes_ceiling(self):
        space = AddressSpace(PAGE_SIZE_4K)
        assert space.pages_for_bytes(1) == 1
        assert space.pages_for_bytes(4096) == 1
        assert space.pages_for_bytes(4097) == 2

    def test_page_size_changes_vpn(self):
        vaddr = 100 * 4096
        assert AddressSpace(PAGE_SIZE_4K).vpn_of(vaddr) == 100
        assert AddressSpace(PAGE_SIZE_64K).vpn_of(vaddr) == 6

    def test_unsupported_page_size(self):
        with pytest.raises(AddressError):
            AddressSpace(5000)

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace().vpn_of(-1)


class TestPageTableEntry:
    def test_touch_increments_and_saturates(self):
        entry = PageTableEntry(vpn=1, pfn=2, owner_gpm=0)
        for _ in range(100):
            entry.touch()
        assert entry.access_count == 63

    def test_copy_for_push_preserves_mapping(self):
        entry = PageTableEntry(vpn=1, pfn=2, owner_gpm=3)
        entry.touch()
        copy = entry.copy_for_push(prefetched=True)
        assert (copy.vpn, copy.pfn, copy.owner_gpm) == (1, 2, 3)
        assert copy.prefetched
        assert not entry.prefetched

    def test_copy_is_independent(self):
        entry = PageTableEntry(vpn=1, pfn=2, owner_gpm=0)
        copy = entry.copy_for_push()
        copy.touch()
        assert entry.access_count == 0


class TestPageTables:
    def test_insert_and_walk(self):
        table = GlobalPageTable()
        table.insert(PageTableEntry(vpn=9, pfn=1, owner_gpm=0))
        assert table.walk(9).pfn == 1
        assert table.walk(10) is None

    def test_duplicate_insert_rejected(self):
        table = GlobalPageTable()
        table.insert(PageTableEntry(vpn=9, pfn=1, owner_gpm=0))
        with pytest.raises(AddressError):
            table.insert(PageTableEntry(vpn=9, pfn=2, owner_gpm=0))

    def test_remove(self):
        table = GlobalPageTable()
        table.insert(PageTableEntry(vpn=9, pfn=1, owner_gpm=0))
        table.remove(9)
        assert not table.contains(9)
        with pytest.raises(AddressError):
            table.remove(9)

    def test_local_table_enforces_ownership(self):
        table = LocalPageTable(gpm_id=2)
        with pytest.raises(AddressError):
            table.insert(PageTableEntry(vpn=1, pfn=0, owner_gpm=5))

    def test_walk_depth_is_five_levels(self):
        assert GlobalPageTable().walk_depth(123) == WALK_LEVELS == 5

    def test_walk_range_skips_unmapped(self):
        table = GlobalPageTable()
        for vpn in (10, 12):
            table.insert(PageTableEntry(vpn=vpn, pfn=vpn, owner_gpm=0))
        entries = table.walk_range(10, 3)
        assert [e.vpn for e in entries] == [10, 12]

    def test_extra_leaf_lines(self):
        table = GlobalPageTable()
        # vpn 0 with 3 successors stays within one leaf line of span 8.
        assert table.extra_leaf_lines(0, 3) == 0
        # vpn 6 + 3 crosses into the next line.
        assert table.extra_leaf_lines(LEAF_LINE_SPAN - 2, 3) == 1

    def test_iteration_and_len(self):
        table = GlobalPageTable()
        for vpn in range(5):
            table.insert(PageTableEntry(vpn=vpn, pfn=vpn, owner_gpm=0))
        assert len(table) == 5
        assert {e.vpn for e in table} == set(range(5))


class TestPageAllocator:
    def _allocator(self, num_gpms=4):
        return PageAllocator(AddressSpace(PAGE_SIZE_4K), num_gpms)

    def test_even_contiguous_partitioning(self):
        allocator = self._allocator(4)
        allocation = allocator.allocate_pages(8)
        owners = [allocation.owner_of[v] for v in allocation.vpns()]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_remainder_goes_to_first_gpms(self):
        allocator = self._allocator(4)
        allocation = allocator.allocate_pages(6)
        owners = [allocation.owner_of[v] for v in allocation.vpns()]
        assert owners == [0, 0, 1, 1, 2, 3]

    def test_allocations_do_not_overlap(self):
        allocator = self._allocator()
        first = allocator.allocate_pages(10)
        second = allocator.allocate_pages(10)
        assert first.end_vpn <= second.base_vpn

    def test_materialize_assigns_frames_per_gpm(self):
        allocator = self._allocator(2)
        entries = allocator.materialize(allocator.allocate_pages(4))
        by_owner = {}
        for entry in entries:
            by_owner.setdefault(entry.owner_gpm, []).append(entry.pfn)
        assert by_owner[0] == [0, 1]
        assert by_owner[1] == [0, 1]

    def test_owner_of_lookup(self):
        allocator = self._allocator(4)
        allocation = allocator.allocate_pages(8)
        assert allocator.owner_of(allocation.base_vpn) == 0
        assert allocator.owner_of(allocation.end_vpn - 1) == 3
        with pytest.raises(AddressError):
            allocator.owner_of(10_000)

    def test_allocate_bytes_rounds_up(self):
        allocator = self._allocator()
        allocation = allocator.allocate_bytes(4097)
        assert allocation.num_pages == 2

    def test_zero_allocation_rejected(self):
        with pytest.raises(AddressError):
            self._allocator().allocate_pages(0)

    def test_total_pages(self):
        allocator = self._allocator()
        allocator.allocate_pages(5)
        allocator.allocate_pages(7)
        assert allocator.total_pages == 12


class TestHBM:
    def test_access_latency(self):
        hbm = HBMModel(access_latency=100)
        assert hbm.access(now=0) == 100

    def test_bandwidth_serialization(self):
        hbm = HBMModel(bandwidth_bytes_per_sec=64e9, access_latency=10)
        first = hbm.access(0, size_bytes=64)
        second = hbm.access(0, size_bytes=64)
        assert first == 10
        assert second == 11  # one-cycle serialization behind the first

    def test_utilization(self):
        hbm = HBMModel(bandwidth_bytes_per_sec=64e9)
        hbm.access(0, size_bytes=640)
        assert hbm.utilization(now=100) == pytest.approx(0.1)

    def test_accounting(self):
        hbm = HBMModel()
        hbm.access(0)
        hbm.access(5)
        assert hbm.accesses == 2
        assert hbm.bytes_served == 128
