"""Tests for GPM sub-components: data cache and trace driver."""

import pytest

from repro.config.gpm import CacheConfig
from repro.gpm.cache import DataCache
from repro.gpm.cu import TraceDriver


@pytest.fixture
def cache():
    return DataCache("c", CacheConfig(64 * 1024, 4, 16, 20))


class TestDataCache:
    def test_miss_then_hit(self, cache):
        key = DataCache.line_key(0, 10, 0)
        assert cache.access(key) is False
        assert cache.access(key) is True

    def test_line_keys_distinguish_owner(self):
        assert DataCache.line_key(0, 1, 0) != DataCache.line_key(1, 1, 0)

    def test_line_keys_distinguish_lines_in_page(self):
        assert DataCache.line_key(0, 1, 0) != DataCache.line_key(0, 1, 64)

    def test_same_line_same_key(self):
        assert DataCache.line_key(0, 1, 3) == DataCache.line_key(0, 1, 60)

    def test_lru_within_set(self, cache):
        keys = [cache.num_sets * i for i in range(cache.num_ways + 1)]
        for key in keys:
            cache.access(key)
        assert cache.probe(keys[0]) is False  # evicted
        assert cache.probe(keys[-1]) is True

    def test_probe_does_not_fill(self, cache):
        assert cache.probe(123) is False
        assert cache.probe(123) is False

    def test_hit_rate(self, cache):
        cache.access(1)
        cache.access(1)
        assert cache.hit_rate() == pytest.approx(0.5)
        assert cache.accesses == 2


class TestTraceDriver:
    def test_issues_whole_trace(self, sim):
        issued = []
        driver = TraceDriver(sim, issued.append, max_outstanding=100, burst=4)
        driver.load([10, 20, 30])
        # Completion immediately frees the slot.
        driver.issue_fn = lambda a: (issued.append(a), driver.complete_one())
        driver.start()
        sim.run()
        assert issued == [10, 20, 30]
        assert driver.drained

    def test_burst_limits_per_cycle_issue(self, sim):
        times = []
        driver = TraceDriver(sim, lambda a: times.append(sim.now),
                             max_outstanding=100, burst=2, interval=1)
        driver.load(list(range(6)))
        driver.start()
        sim.run_until(10)
        assert times == [0, 0, 1, 1, 2, 2]

    def test_outstanding_limit_blocks_issue(self, sim):
        issued = []
        driver = TraceDriver(sim, issued.append, max_outstanding=2, burst=4)
        driver.load(list(range(5)))
        driver.start()
        sim.run_until(5)
        assert len(issued) == 2  # stuck until completions
        driver.complete_one()
        driver.complete_one()
        sim.run_until(10)
        assert len(issued) == 4

    def test_interval_spacing(self, sim):
        times = []
        driver = TraceDriver(sim, lambda a: times.append(sim.now),
                             max_outstanding=10, burst=1, interval=5)
        driver.load([1, 2, 3])
        driver.start()
        sim.run_until(20)
        assert times == [0, 5, 10]

    def test_on_drain_callback(self, sim):
        drained = []
        driver = TraceDriver(sim, lambda a: None, max_outstanding=4)
        driver.on_drain = lambda: drained.append(sim.now)
        driver.load([1])
        driver.start()
        sim.run()
        assert not drained  # one access still outstanding
        driver.complete_one()
        assert drained

    def test_empty_trace_drains_immediately(self, sim):
        drained = []
        driver = TraceDriver(sim, lambda a: None, max_outstanding=4)
        driver.on_drain = lambda: drained.append(True)
        driver.load([])
        driver.start()
        assert drained

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            TraceDriver(sim, lambda a: None, max_outstanding=0)
