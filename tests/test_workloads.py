"""Workload generator tests: Table II identity, determinism, and the
per-benchmark access-pattern properties the paper characterises."""

import pytest

from repro.mem.address import AddressSpace
from repro.mem.allocator import PageAllocator
from repro.stats.locality import SpatialLocalityAnalyzer
from repro.stats.reuse import TranslationCountAnalyzer
from repro.units import MB
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    all_workloads,
    get_workload,
    workload_table,
)
from repro.errors import WorkloadError

NUM_GPMS = 48


def _generate(name, scale=0.05, seed=7, num_gpms=NUM_GPMS):
    allocator = PageAllocator(AddressSpace(), num_gpms)
    trace = get_workload(name).generate(
        num_gpms=num_gpms, allocator=allocator, scale=scale, seed=seed
    )
    return trace, allocator


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 14
        assert len(all_workloads()) == 14

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_lookup_case_insensitive(self):
        assert get_workload("SPMV").name == "spmv"

    def test_table_ii_parameters(self):
        rows = {row["abbr"]: row for row in workload_table()}
        assert rows["AES"]["workgroups"] == 4_096
        assert rows["AES"]["memory_fp_mb"] == 8
        assert rows["MT"]["memory_fp_mb"] == 2_048
        assert rows["RELU"]["workgroups"] == 1_310_720
        assert rows["SPMV"]["memory_fp_mb"] == 120


class TestGenerationContract:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_one_stream_per_gpm(self, name):
        trace, _ = _generate(name)
        assert trace.num_gpms == NUM_GPMS
        assert all(len(stream) > 0 for stream in trace.per_gpm)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_addresses_within_allocations(self, name):
        trace, allocator = _generate(name)
        space = allocator.address_space
        lo = min(a.base_vpn for a in allocator.allocations)
        hi = max(a.end_vpn for a in allocator.allocations)
        for stream in trace.per_gpm:
            for vaddr in stream:
                assert lo <= space.vpn_of(vaddr) < hi

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_deterministic_for_seed(self, name):
        first, _ = _generate(name, seed=3)
        second, _ = _generate(name, seed=3)
        assert first.per_gpm == second.per_gpm

    def test_different_seeds_differ_for_random_workloads(self):
        first, _ = _generate("pr", seed=1)
        second, _ = _generate("pr", seed=2)
        assert first.per_gpm != second.per_gpm

    def test_scale_shrinks_accesses_and_footprint(self):
        big, big_alloc = _generate("fft", scale=0.2)
        small, small_alloc = _generate("fft", scale=0.05)
        assert small.total_accesses < big.total_accesses
        assert small_alloc.total_pages < big_alloc.total_pages

    def test_invalid_scale_rejected(self):
        allocator = PageAllocator(AddressSpace(), 4)
        with pytest.raises(WorkloadError):
            get_workload("aes").generate(4, allocator, scale=0.0)
        with pytest.raises(WorkloadError):
            get_workload("aes").generate(4, allocator, scale=1.5)

    def test_small_gpm_count(self):
        trace, _ = _generate("spmv", num_gpms=4)
        assert trace.num_gpms == 4


def _merged_vpn_stream(trace, allocator):
    space = allocator.address_space
    return [space.vpn_of(v) for v in trace.merged_stream()]


class TestPatternProperties:
    """Each benchmark must exhibit the paper's characterised behaviour."""

    def test_relu_pages_touched_in_one_window(self):
        """Fig. 6 (single-touch streaming): every page's accesses cluster
        in one short window of the stream — no later revisits."""
        trace, allocator = _generate("relu", scale=0.1)
        space = allocator.address_space
        for stream in trace.per_gpm[:8]:
            first_seen, last_seen = {}, {}
            for index, vaddr in enumerate(stream):
                vpn = space.vpn_of(vaddr)
                first_seen.setdefault(vpn, index)
                last_seen[vpn] = index
            spans = sorted(last_seen[v] - first_seen[v] for v in first_seen)
            p90 = spans[int(0.9 * (len(spans) - 1))]
            assert p90 < len(stream) * 0.3

    def test_fir_has_strong_sequential_locality(self):
        """Fig. 8: FIR's next-page distance is overwhelmingly small (the
        interleaved tap reads break a small fraction of pairs)."""
        trace, allocator = _generate("fir", scale=0.1)
        space = allocator.address_space
        analyzer = SpatialLocalityAnalyzer()
        stream = trace.per_gpm[0]
        for vaddr in stream:
            analyzer.record(space.vpn_of(vaddr))
        assert analyzer.fraction_within(2) > 0.5

    def test_mt_writes_have_no_page_locality(self):
        """MT's column writes stride to a new page nearly every access."""
        trace, allocator = _generate("mt", scale=0.1)
        space = allocator.address_space
        stream = trace.per_gpm[0]
        transitions = 0
        pairs = 0
        for a, b in zip(stream, stream[1:]):
            pairs += 1
            if space.vpn_of(a) != space.vpn_of(b):
                transitions += 1
        assert transitions / pairs > 0.5

    def test_pr_gather_is_skewed(self):
        """PR's rank reads follow a heavy-tailed (hub-dominated) law:
        its hottest pages are far hotter than a uniform spread."""
        trace, allocator = _generate("pr", scale=0.1)
        space = allocator.address_space
        counts = {}
        for stream in trace.per_gpm:
            for vaddr in stream:
                vpn = space.vpn_of(vaddr)
                counts[vpn] = counts.get(vpn, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        uniform = sum(ranked) / len(ranked)
        assert ranked[0] > 10 * uniform
        top_decile = ranked[: max(1, len(ranked) // 10)]
        assert sum(top_decile) / sum(ranked) > 0.3

    def test_bt_is_mostly_partition_local(self):
        """§V-C: BT's locality lets the local GMMU serve most requests."""
        trace, allocator = _generate("bt", scale=0.1)
        space = allocator.address_space
        local = 0
        total = 0
        for gpm, stream in enumerate(trace.per_gpm):
            for vaddr in stream:
                total += 1
                if allocator.owner_of(space.vpn_of(vaddr)) == gpm:
                    local += 1
        assert local / total > 0.5

    def test_pivot_pages_shared_across_gpms(self):
        """FWS pivot rows: many pages are read by multiple GPMs (each GPM
        starts at its own column offset, so sharing is staggered rather
        than lockstep)."""
        trace, allocator = _generate("fws", scale=0.1)
        space = allocator.address_space
        touched_by = {}
        for gpm, stream in enumerate(trace.per_gpm):
            for vaddr in stream:
                touched_by.setdefault(space.vpn_of(vaddr), set()).add(gpm)
        shared = [v for v, gpms in touched_by.items() if len(gpms) >= 4]
        assert len(shared) >= 1

    def test_aes_issue_shape_is_compute_bound(self):
        trace, _ = _generate("aes")
        assert trace.interval > 1

    def test_metadata_recorded(self):
        trace, _ = _generate("mm", scale=0.1)
        assert trace.metadata["workgroups"] == 16_384
        assert trace.metadata["scale"] == 0.1
        assert trace.metadata["footprint_bytes"] <= 256 * MB
