"""Tests for the O3/O4 trace analyzers (reuse distance, spatial locality)."""

import pytest

from repro.stats.locality import SpatialLocalityAnalyzer
from repro.stats.reuse import ReuseDistanceAnalyzer, TranslationCountAnalyzer


class TestTranslationCountAnalyzer:
    def test_counts_per_page(self):
        analyzer = TranslationCountAnalyzer()
        for vpn in (1, 2, 1, 1):
            analyzer.record(vpn)
        assert analyzer.count_of(1) == 3
        assert analyzer.unique_pages == 2
        assert analyzer.total_requests == 4

    def test_single_translation_fraction(self):
        analyzer = TranslationCountAnalyzer()
        for vpn in (1, 2, 3, 3):
            analyzer.record(vpn)
        assert analyzer.fraction_single_translation() == pytest.approx(2 / 3)

    def test_histogram_keys_are_counts(self):
        analyzer = TranslationCountAnalyzer()
        for vpn in (1, 1, 2):
            analyzer.record(vpn)
        histogram = analyzer.histogram()
        assert histogram.count(1) == 1  # one page translated once
        assert histogram.count(2) == 1  # one page translated twice

    def test_mean_translations(self):
        analyzer = TranslationCountAnalyzer()
        for vpn in (1, 1, 2, 2):
            analyzer.record(vpn)
        assert analyzer.mean_translations_per_page() == pytest.approx(2.0)

    def test_empty(self):
        analyzer = TranslationCountAnalyzer()
        assert analyzer.fraction_single_translation() == 0.0
        assert analyzer.mean_translations_per_page() == 0.0


class TestReuseDistanceAnalyzer:
    def test_distance_counts_intervening_requests(self):
        analyzer = ReuseDistanceAnalyzer()
        for vpn in (1, 2, 3, 1):  # two requests between the 1s
            analyzer.record(vpn)
        assert analyzer.repeated_requests == 1
        assert analyzer.max_distance == 2
        assert analyzer.min_distance == 2

    def test_back_to_back_distance_zero(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.record(7)
        analyzer.record(7)
        assert analyzer.min_distance == 0

    def test_no_repeats(self):
        analyzer = ReuseDistanceAnalyzer()
        for vpn in (1, 2, 3):
            analyzer.record(vpn)
        assert analyzer.repeated_requests == 0

    def test_fraction_short(self):
        analyzer = ReuseDistanceAnalyzer()
        analyzer.record(1)
        analyzer.record(1)  # distance 0
        for vpn in range(100, 150):
            analyzer.record(vpn)
        analyzer.record(1)  # distance 50
        assert analyzer.fraction_short(10) == pytest.approx(0.5)

    def test_distance_resets_after_each_touch(self):
        analyzer = ReuseDistanceAnalyzer()
        for vpn in (1, 1, 2, 1):
            analyzer.record(vpn)
        assert analyzer.repeated_requests == 2
        assert analyzer.max_distance == 1


class TestSpatialLocalityAnalyzer:
    def test_adjacent_pages_within_one(self):
        analyzer = SpatialLocalityAnalyzer()
        for vpn in (10, 11, 12):
            analyzer.record(vpn)
        assert analyzer.fraction_within(1) == pytest.approx(1.0)

    def test_far_pages(self):
        analyzer = SpatialLocalityAnalyzer()
        analyzer.record(0)
        analyzer.record(1000)
        assert analyzer.fraction_within(16) == 0.0
        assert analyzer.far == 1

    def test_fraction_within_is_cumulative(self):
        analyzer = SpatialLocalityAnalyzer()
        for vpn in (0, 1, 3, 7):  # distances 1, 2, 4
            analyzer.record(vpn)
        assert analyzer.fraction_within(1) == pytest.approx(1 / 3)
        assert analyzer.fraction_within(2) == pytest.approx(2 / 3)
        assert analyzer.fraction_within(4) == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        analyzer = SpatialLocalityAnalyzer()
        for vpn in (0, 1, 5, 100, 101):
            analyzer.record(vpn)
        assert sum(analyzer.fractions()) == pytest.approx(1.0)

    def test_labels_match_fraction_buckets(self):
        analyzer = SpatialLocalityAnalyzer()
        assert len(analyzer.labels()) == len(analyzer.fractions())

    def test_single_request_no_pairs(self):
        analyzer = SpatialLocalityAnalyzer()
        analyzer.record(5)
        assert analyzer.total_pairs == 0
        assert analyzer.fraction_within(1) == 0.0
