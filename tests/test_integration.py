"""End-to-end shape tests on the real 7x7 wafer.

These assert the paper's qualitative claims at reduced scale: HDPAT helps
translation-bound workloads, leaves MT nearly untouched, reduces remote
round-trip time, and adds only marginal NoC traffic.
"""

import pytest

from repro.config.hdpat import HDPATConfig
from repro.config.presets import wafer_7x12_config, wafer_7x7_config
from repro.config.scaling import capacity_scaled
from repro.system.runner import run_benchmark

SCALE = 0.05
SEED = 11


def _run(config, workload):
    return run_benchmark(
        capacity_scaled(config, SCALE), workload, scale=SCALE, seed=SEED
    )


@pytest.fixture(scope="module")
def baseline_pr():
    return _run(wafer_7x7_config(), "pr")


@pytest.fixture(scope="module")
def hdpat_pr():
    return _run(wafer_7x7_config(hdpat=HDPATConfig.full()), "pr")


class TestHeadlineShape:
    def test_hdpat_speeds_up_pr_substantially(self, baseline_pr, hdpat_pr):
        assert hdpat_pr.speedup_over(baseline_pr) > 1.3

    def test_hdpat_reduces_iommu_walks(self, baseline_pr, hdpat_pr):
        assert hdpat_pr.iommu_walks < baseline_pr.iommu_walks

    def test_hdpat_reduces_rtt(self, baseline_pr, hdpat_pr):
        assert hdpat_pr.mean_rtt < baseline_pr.mean_rtt

    def test_hdpat_offloads_translations(self, hdpat_pr):
        assert hdpat_pr.offload_fraction() > 0.3
        breakdown = hdpat_pr.remote_breakdown()
        assert breakdown["peer"] > 0
        assert breakdown["redirect"] > 0

    def test_traffic_overhead_bounded_and_data_side_unchanged(
        self, baseline_pr, hdpat_pr
    ):
        # The paper reports +0.82% *total* traffic because real kernels
        # move ~100x more data bytes than translation bytes; our traces
        # are representative (sparser) accesses, so we assert the honest
        # invariants instead: the data-side volume is untouched and the
        # translation-side overhead stays within a small multiple.
        base_data = baseline_pr.total_link_bytes - baseline_pr.translation_link_bytes
        hdpat_data = hdpat_pr.total_link_bytes - hdpat_pr.translation_link_bytes
        assert hdpat_data == base_data
        assert (
            hdpat_pr.translation_link_bytes
            < 4 * baseline_pr.translation_link_bytes
        )

    def test_mt_barely_improves(self):
        baseline = _run(wafer_7x7_config(), "mt")
        hdpat = _run(wafer_7x7_config(hdpat=HDPATConfig.full()), "mt")
        assert hdpat.speedup_over(baseline) < 1.3

    def test_all_gpms_finish_on_both_configs(self, baseline_pr, hdpat_pr):
        assert baseline_pr.extras["all_finished"]
        assert hdpat_pr.extras["all_finished"]


class TestIdealizedIOMMUHeadroom:
    def test_ideal_latency_beats_baseline(self, baseline_pr):
        config = wafer_7x7_config()
        ideal = config.with_iommu(config.iommu.idealized(walk_latency=1))
        result = _run(ideal, "pr")
        assert result.speedup_over(baseline_pr) > 1.5

    def test_ideal_parallelism_beats_baseline(self, baseline_pr):
        config = wafer_7x7_config()
        ideal = config.with_iommu(config.iommu.idealized(num_walkers=4096))
        result = _run(ideal, "pr")
        assert result.speedup_over(baseline_pr) > 1.5


class TestGeometry:
    def test_central_gpms_finish_earlier_on_irregular_workload(self):
        result = _run(wafer_7x7_config(), "spmv")
        from repro.noc.topology import MeshTopology

        topology = MeshTopology(7, 7)
        by_ring = {}
        for tile, finish in zip(topology.gpm_tiles, result.per_gpm_finish):
            ring = topology.chebyshev_from_cpu(tile.coordinate)
            by_ring.setdefault(ring, []).append(finish)
        inner = sum(by_ring[1]) / len(by_ring[1])
        outer = sum(by_ring[3]) / len(by_ring[3])
        assert inner < outer

    def test_larger_wafer_still_benefits(self):
        baseline = _run(wafer_7x12_config(), "pr")
        hdpat = _run(wafer_7x12_config(hdpat=HDPATConfig.full()), "pr")
        assert hdpat.speedup_over(baseline) > 1.2


class TestDeterminism:
    def test_same_seed_same_result(self):
        first = _run(wafer_7x7_config(), "fwt")
        second = _run(wafer_7x7_config(), "fwt")
        assert first.exec_cycles == second.exec_cycles
        assert first.iommu_walks == second.iommu_walks
        assert first.total_link_bytes == second.total_link_bytes

    def test_hdpat_deterministic_too(self):
        config = wafer_7x7_config(hdpat=HDPATConfig.full())
        first = _run(config, "spmv")
        second = _run(config, "spmv")
        assert first.exec_cycles == second.exec_cycles
        assert first.served_by == second.served_by
