"""Tests for unit helpers."""

import pytest

from repro.units import (
    CACHELINE_BYTES,
    GB,
    KB,
    MB,
    bytes_per_cycle,
    cycles_to_ms,
    geomean,
    serialization_cycles,
)


class TestSizes:
    def test_size_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert CACHELINE_BYTES == 64


class TestBandwidth:
    def test_bytes_per_cycle_at_1ghz(self):
        assert bytes_per_cycle(768e9) == pytest.approx(768.0)

    def test_serialization_minimum_one_cycle(self):
        assert serialization_cycles(16, 768.0) == 1

    def test_serialization_large_message(self):
        assert serialization_cycles(7680, 768.0) == 10

    def test_serialization_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            serialization_cycles(64, 0)


class TestConversions:
    def test_cycles_to_ms(self):
        assert cycles_to_ms(1_000_000) == pytest.approx(1.0)

    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_single(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_geomean_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
