"""Tests for the observability stack: metrics, tracing, export, profiling."""

from __future__ import annotations

import json

import pytest

from repro.errors import AccountingWarning, ObservabilityError, TruncationWarning
from repro.obs import NULL_METRIC, Observability, Tracer, summarize
from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    jsonl_lines,
    read_jsonl,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.system.runner import _prefetch_accuracy_raw, run_benchmark


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc(4)
        assert registry.counter("a.hits").to_value() == 5

    def test_gauge_last_value_and_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.sample(100, 7)
        gauge.sample(200, 2)
        assert gauge.value == 2
        assert gauge.points() == [(100, 7), (200, 2)]

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rtt")
        for value in (30, 10, 20, 40):
            hist.observe(value)
        summary = hist.to_value()
        assert summary["count"] == 4
        assert summary["mean"] == 25
        assert summary["min"] == 10
        assert summary["max"] == 40
        assert summary["p50"] in (20, 30)

    def test_histogram_percentile_after_unsorted_observes(self):
        hist = Histogram("h")
        for value in (5, 1, 3):
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 5

    def test_same_name_is_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_disabled_registry_hands_out_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        metric = registry.counter("anything")
        assert metric is NULL_METRIC
        metric.inc()
        metric.set(1)
        metric.observe(2)
        metric.sample(0, 3)
        assert len(registry) == 0

    def test_merge_stats_folds_plain_dicts(self):
        registry = MetricsRegistry()
        registry.merge_stats("gpm0", {"hits": 3, "misses": 1})
        registry.merge_stats("gpm0", {"hits": 2})
        assert registry.counter("gpm0.hits").to_value() == 5
        assert registry.counter("gpm0.misses").to_value() == 1

    def test_snapshot_nests_dotted_names(self):
        registry = MetricsRegistry()
        registry.counter("a.b.c").inc(1)
        registry.counter("a.b.d").inc(2)
        registry.counter("top").inc(9)
        snapshot = registry.snapshot()
        assert snapshot["a"]["b"] == {"c": 1, "d": 2}
        assert snapshot["top"] == 9

    def test_snapshot_leaf_and_interior_collision(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(1)
        registry.counter("a.b.c").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["a"]["b"][""] == 1
        assert snapshot["a"]["b"]["c"] == 2

    def test_gauges_matching_suffix(self):
        registry = MetricsRegistry()
        registry.gauge("gpm0.pending_depth")
        registry.gauge("gpm1.pending_depth")
        registry.counter("gpm0.pending_depth_total")
        matches = registry.gauges_matching(".pending_depth")
        assert [gauge.name for gauge in matches] == [
            "gpm0.pending_depth", "gpm1.pending_depth",
        ]


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.instant(1, "x")
        tracer.complete(1, 5, "y")
        tracer.async_begin(1, "z", "cat", "t", span_id=7)
        assert len(tracer) == 0

    def test_span_ids_are_aliased_densely(self):
        tracer = Tracer(enabled=True)
        tracer.async_begin(0, "s", "c", "t", span_id=900)
        tracer.async_begin(0, "s", "c", "t", span_id=17)
        tracer.async_end(5, "s", "c", "t", span_id=900)
        ids = [event.span_id for event in tracer.events]
        assert ids == [0, 1, 0]

    def test_sync_span_nesting(self):
        tracer = Tracer(enabled=True)
        tracer.begin_span(0, "outer")
        tracer.begin_span(1, "inner")
        assert tracer.open_spans() == ["outer", "inner"]
        tracer.end_span(2, "inner")
        tracer.end_span(3)
        assert tracer.open_spans() == []
        assert [event.ph for event in tracer.events] == ["B", "B", "E", "E"]

    def test_end_span_without_open_raises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ObservabilityError):
            tracer.end_span(0)

    def test_end_span_name_mismatch_raises(self):
        tracer = Tracer(enabled=True)
        tracer.begin_span(0, "outer")
        with pytest.raises(ObservabilityError):
            tracer.end_span(1, "wrong")

    def test_async_spans_pair_begin_and_end(self):
        tracer = Tracer(enabled=True)
        tracer.async_begin(10, "remote_translation", "c", "gpm0", span_id=1,
                           args={"vpn": 42})
        tracer.async_instant(15, "iommu.arrival", "c", "iommu", span_id=1)
        tracer.async_end(30, "remote_translation", "c", "gpm0", span_id=1,
                         args={"served_by": "iommu"})
        spans = tracer.async_spans(name="remote_translation")
        assert len(spans) == 1
        span = spans[0]
        assert span.duration == 20
        assert span.begin_args == {"vpn": 42}
        assert span.end_args == {"served_by": "iommu"}
        assert span.step_names() == ["iommu.arrival"]

    def test_unfinished_async_span_not_returned(self):
        tracer = Tracer(enabled=True)
        tracer.async_begin(0, "s", "c", "t", span_id=1)
        assert tracer.async_spans() == []

    def test_clear_resets_aliasing(self):
        tracer = Tracer(enabled=True)
        tracer.async_begin(0, "s", "c", "t", span_id=55)
        tracer.clear()
        tracer.async_begin(0, "s", "c", "t", span_id=77)
        assert tracer.events[0].span_id == 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    tracer.instant(5, "tlb_miss", cat="translation", track="gpm0",
                   args={"vpn": 1})
    tracer.complete(10, 90, "iommu.walk", cat="iommu", track="iommu",
                    span_id=3, args={"vpn": 1})
    tracer.async_begin(5, "remote_translation", "translation", "gpm0",
                       span_id=3)
    tracer.async_end(110, "remote_translation", "translation", "gpm0",
                     span_id=3, args={"served_by": "iommu"})
    tracer.counter(50, "gpm0.pending_depth", track="depth", value=4)
    return tracer


class TestExport:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, str(path))
        assert count == len(tracer)
        assert read_jsonl(str(path)) == tracer.events

    def test_jsonl_rewrite_is_byte_identical(self, tmp_path):
        tracer = _sample_tracer()
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(tracer, str(first))
        write_jsonl(read_jsonl(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_chrome_export_structure(self):
        tracer = _sample_tracer()
        payload = json.loads(chrome_trace_json(tracer))
        events = payload["traceEvents"]
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] in ("process_name", "thread_name")
        }
        assert names == {"hdpat-sim", "gpm0", "iommu", "depth"}
        kinds = {e["name"] for e in events if e["ph"] == "M"}
        assert "thread_sort_index" in kinds and "process_sort_index" in kinds
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and complete[0]["dur"] == 90
        begun = [e for e in events if e["ph"] == "b"]
        ended = [e for e in events if e["ph"] == "e"]
        assert begun[0]["id"] == ended[0]["id"]
        counter = [e for e in events if e["ph"] == "C"]
        assert counter[0]["args"] == {"value": 4}

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        tracer = _sample_tracer()
        chrome_path = tmp_path / "t.json"
        jsonl_path = tmp_path / "t.jsonl"
        write_trace(tracer, str(chrome_path))
        write_trace(tracer, str(jsonl_path))
        assert "traceEvents" in json.loads(chrome_path.read_text())
        assert len(jsonl_path.read_text().splitlines()) == len(tracer)

    def test_jsonl_lines_sorted_keys(self):
        lines = list(jsonl_lines(_sample_tracer()))
        record = json.loads(lines[0])
        assert list(record) == sorted(record)


# ----------------------------------------------------------------------
# End-to-end: traced runs, determinism, truncation, accounting
# ----------------------------------------------------------------------
def _traced_run(config, **kwargs):
    obs = Observability(metrics=True, trace=True)
    result = run_benchmark(
        config, "fir", scale=0.02, seed=7, obs=obs, **kwargs
    )
    return result, obs


class TestTracedRuns:
    def test_traced_run_has_complete_remote_spans(self, small_system_config):
        result, obs = _traced_run(small_system_config)
        spans = obs.tracer.async_spans(name="remote_translation")
        assert spans, "no remote translation traced"
        for span in spans:
            assert span.duration > 0
            assert "served_by" in span.end_args
        assert result.extras["trace_events"] == len(obs.tracer)

    def test_metrics_snapshot_in_extras(self, small_system_config):
        result, _ = _traced_run(small_system_config)
        metrics = result.extras["metrics"]
        assert metrics["sim"]["events_processed"] > 0
        assert metrics["iommu"]["requests"] == result.iommu_requests
        assert "noc" in metrics

    def test_per_level_tlb_metrics(self, small_system_config):
        result, _ = _traced_run(small_system_config)
        tlb = result.extras["metrics"]["gpm0"]["tlb"]
        assert set(tlb) == {"l1v", "l1s", "l1i", "l2tlb", "llt"}
        assert tlb["l1v"]["hits"] + tlb["l1v"]["misses"] > 0

    def test_link_report_in_extras(self, small_system_config):
        result, _ = _traced_run(small_system_config)
        links = result.extras["noc_links"]
        assert links
        for row in links:
            assert 0.0 <= row["busy_fraction"] <= 1.0

    def test_two_seeded_runs_trace_byte_identically(self, small_system_config):
        _, obs_a = _traced_run(small_system_config)
        _, obs_b = _traced_run(small_system_config)
        assert chrome_trace_json(obs_a.tracer) == chrome_trace_json(obs_b.tracer)
        assert list(jsonl_lines(obs_a.tracer)) == list(jsonl_lines(obs_b.tracer))

    def test_untraced_run_is_unperturbed(self, small_system_config):
        result_plain = run_benchmark(small_system_config, "fir",
                                     scale=0.02, seed=7)
        result_traced, _ = _traced_run(small_system_config)
        assert result_plain.exec_cycles == result_traced.exec_cycles
        assert result_plain.served_by == result_traced.served_by

    def test_summarize_renders_all_sections(self, small_system_config):
        result, obs = _traced_run(small_system_config)
        report = summarize(result, obs=obs)
        assert "top latency contributors" in report
        assert "NoC links" in report
        assert "queue depth" in report

    def test_profiled_run_lands_in_extras(self, small_system_config):
        obs = Observability(profile=True)
        result = run_benchmark(small_system_config, "fir", scale=0.02,
                               seed=7, obs=obs)
        rows = result.extras["host_profile"]
        assert rows and all(row["seconds"] >= 0 for row in rows)


class TestTruncation:
    def test_truncated_run_warns_and_counts_drops(self, small_system_config):
        with pytest.warns(TruncationWarning):
            result = run_benchmark(small_system_config, "fir",
                                   scale=0.02, seed=7, max_cycles=500)
        assert result.truncated
        assert result.extras["dropped_events"] > 0
        assert not result.extras["all_finished"]

    def test_truncation_counter_bumped(self, small_system_config):
        obs = Observability(metrics=True)
        with pytest.warns(TruncationWarning):
            run_benchmark(small_system_config, "fir", scale=0.02,
                          seed=7, max_cycles=500, obs=obs)
        counter = obs.registry.get("warnings.truncated_events")
        assert counter is not None and counter.to_value() > 0

    def test_full_run_not_truncated(self, small_system_config):
        result = run_benchmark(small_system_config, "fir", scale=0.02, seed=7)
        assert not result.truncated
        assert result.extras["dropped_events"] == 0


class TestPrefetchAccounting:
    def test_raw_ratio_unclamped(self):
        assert _prefetch_accuracy_raw(15, 10) == 1.5
        assert _prefetch_accuracy_raw(5, 10) == 0.5

    def test_raw_ratio_zero_when_nothing_pushed(self):
        assert _prefetch_accuracy_raw(5, 0) == 0.0

    def test_warning_taxonomy(self):
        from repro.errors import ReproWarning

        assert issubclass(AccountingWarning, ReproWarning)
        assert issubclass(TruncationWarning, ReproWarning)
        assert issubclass(ReproWarning, UserWarning)

    def test_raw_accuracy_in_extras(self, small_system_config):
        result = run_benchmark(small_system_config, "fir", scale=0.02, seed=7)
        raw = result.extras["prefetch_accuracy_raw"]
        assert raw == result.prefetch_accuracy_raw()
        assert result.prefetch_accuracy() == min(1.0, raw)


# ----------------------------------------------------------------------
# Phase attribution (per-subsystem wall-time)
# ----------------------------------------------------------------------
class TestPhaseAttribution:
    def test_phase_profile_in_extras(self, small_system_config):
        from repro.obs.phases import PHASE_ENGINE, PHASE_TLB

        obs = Observability(phases=True)
        result = run_benchmark(small_system_config, "fir", scale=0.02,
                               seed=7, obs=obs)
        profile = result.extras["phase_profile"]
        assert profile[PHASE_ENGINE] > 0
        assert PHASE_TLB in profile

    def test_leaves_never_exceed_engine_total(self, small_system_config):
        from repro.obs.phases import _LEAF_PHASES, PHASE_ENGINE

        obs = Observability(phases=True)
        result = run_benchmark(small_system_config, "fir", scale=0.02,
                               seed=7, obs=obs)
        profile = result.extras["phase_profile"]
        leaf_sum = sum(profile.get(name, 0.0) for name in _LEAF_PHASES)
        # Leaves nest occasionally (noc.send inside iommu.walk), so allow
        # a generous factor rather than strict disjointness.
        assert leaf_sum <= profile[PHASE_ENGINE] * 2.0

    def test_instrumented_digest_matches_bare_run(self, small_system_config):
        from repro.analysis.sanitizers import result_digest

        bare = run_benchmark(small_system_config, "fir", scale=0.02, seed=7)
        instrumented = run_benchmark(
            small_system_config, "fir", scale=0.02, seed=7,
            obs=Observability(phases=True, profile=True, metrics=True),
        )
        assert result_digest(bare) == result_digest(instrumented)

    def test_summarize_includes_phase_section(self, small_system_config):
        obs = Observability(phases=True)
        result = run_benchmark(small_system_config, "fir", scale=0.02,
                               seed=7, obs=obs)
        report = summarize(result, obs=obs)
        assert "wall-time attribution" in report
        assert "engine.dispatch" in report

    def test_sanitizer_overhead_surfaces_as_rows(self, small_system_config):
        obs = Observability(phases=True, profile=True)
        result = run_benchmark(small_system_config, "fir", scale=0.02,
                               seed=7, obs=obs, sanitize=True)
        assert "sanitize" in result.extras["phase_profile"]
        callbacks = {row["callback"] for row in result.extras["host_profile"]}
        assert "sanitizer.event_order" in callbacks

    def test_report_accumulator_shape(self):
        from repro.obs.phases import PHASE_ENGINE, PHASE_TLB, PhaseAccumulator

        phases = PhaseAccumulator()
        phases.add(PHASE_ENGINE, 1.0)
        phases.add(PHASE_TLB, 0.25)
        rows = phases.report()
        by_name = {row["phase"]: row for row in rows}
        assert by_name[PHASE_ENGINE]["share"] == 1.0
        assert by_name[PHASE_TLB]["share"] == 0.25
        assert by_name["engine.other"]["seconds"] == pytest.approx(0.75)


# ----------------------------------------------------------------------
# Truncated-trace flushing
# ----------------------------------------------------------------------
class TestFlushOpenSpans:
    def test_truncated_trace_has_no_open_spans(self, small_system_config):
        obs = Observability(trace=True, metrics=True)
        with pytest.warns(TruncationWarning):
            run_benchmark(small_system_config, "fir", scale=0.02,
                          seed=7, max_cycles=500, obs=obs)
        assert obs.tracer.open_async_spans() == []
        begins = sum(1 for e in obs.tracer.events if e.ph in ("B", "b"))
        ends = sum(1 for e in obs.tracer.events if e.ph in ("E", "e"))
        assert begins == ends
        flushed = obs.registry.get("warnings.flushed_spans")
        assert flushed is not None and flushed.to_value() > 0

    def test_flushed_chrome_trace_is_loadable_json(self, small_system_config):
        obs = Observability(trace=True)
        with pytest.warns(TruncationWarning):
            run_benchmark(small_system_config, "fir", scale=0.02,
                          seed=7, max_cycles=500, obs=obs)
        payload = json.loads(chrome_trace_json(obs.tracer))
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names

    def test_flush_marks_events(self):
        tracer = Tracer(enabled=True)
        tracer.begin_span(0, "outer", track="t")
        tracer.async_begin(5, "rpc", "span", "t", span_id=123)
        assert tracer.flush_open(10) == 2
        assert tracer.flush_open(10) == 0
        closing = [e for e in tracer.events if e.ph in ("E", "e")]
        assert all(e.args == {"flushed": True} for e in closing)
