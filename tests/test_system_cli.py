"""Tests for the single-run CLI (``python -m repro.system``)."""

import json

import pytest

from repro.obs.export import read_jsonl
from repro.system.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["spmv"])
        assert args.benchmark == "spmv"
        assert args.mesh == "7x7"
        assert args.gpu == "mi100"
        assert not args.hdpat

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_hdpat_and_ablation_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spmv", "--hdpat", "--ablation", "route"])


class TestMain:
    def test_baseline_text_output(self, capsys):
        assert main(["aes", "--mesh", "3x3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "AES on" in out
        assert "IOMMU:" in out

    def test_hdpat_json_output(self, capsys):
        assert main([
            "pr", "--mesh", "3x3", "--scale", "0.02", "--hdpat", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "pr"
        assert "remote_breakdown" in payload
        assert payload["exec_cycles"] > 0

    def test_ablation_flag(self, capsys):
        assert main([
            "pr", "--mesh", "3x3", "--scale", "0.02",
            "--ablation", "redirection",
        ]) == 0
        assert "redir" in capsys.readouterr().out

    def test_bad_mesh_spec(self, capsys):
        assert main(["aes", "--mesh", "banana"]) == 2
        assert "must look like" in capsys.readouterr().err

    def test_page_size_flag(self, capsys):
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02",
            "--page-size", "16384", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "page=16K" in payload["config"]

    def test_no_capacity_scaling_flag(self, capsys):
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02",
            "--no-capacity-scaling",
        ]) == 0


class TestRunVerbAndWorkloadAlias:
    def test_run_verb_with_workload_flag(self, capsys):
        assert main([
            "run", "--workload", "aes", "--mesh", "3x3", "--scale", "0.02",
        ]) == 0
        assert "AES on" in capsys.readouterr().out

    def test_missing_benchmark_errors(self, capsys):
        assert main(["--mesh", "3x3"]) == 2
        assert "no benchmark" in capsys.readouterr().err

    def test_conflicting_names_error(self, capsys):
        assert main(["aes", "--workload", "pr"]) == 2
        assert "twice" in capsys.readouterr().err

    def test_positional_and_matching_workload_ok(self, capsys):
        assert main([
            "aes", "--workload", "aes", "--mesh", "3x3", "--scale", "0.02",
        ]) == 0


class TestObservabilityFlags:
    def test_trace_writes_chrome_file(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        assert main([
            "run", "--workload", "aes", "--mesh", "3x3", "--scale", "0.02",
            "--trace", str(trace_path),
        ]) == 0
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert any(event["ph"] == "M" for event in events)
        begun = {e["id"] for e in events
                 if e["ph"] == "b" and e["name"] == "remote_translation"}
        ended = {e["id"] for e in events
                 if e["ph"] == "e" and e["name"] == "remote_translation"}
        assert begun & ended, "no complete remote_translation span traced"

    def test_trace_jsonl_extension(self, tmp_path):
        trace_path = tmp_path / "out.jsonl"
        assert main([
            "run", "--workload", "aes", "--mesh", "3x3", "--scale", "0.02",
            "--trace", str(trace_path),
        ]) == 0
        events = read_jsonl(str(trace_path))
        assert events
        assert all(isinstance(event.ts, int) for event in events)

    def test_metrics_out_snapshot(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02",
            "--metrics-out", str(metrics_path),
        ]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert "iommu" in snapshot
        assert "sim" in snapshot

    def test_profile_prints_report(self, capsys):
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "== profile:" in out
        assert "host Python loop" in out

    def test_json_stdout_stays_pure_with_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "out.json"
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02", "--json",
            "--trace", str(trace_path),
        ]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["workload"] == "aes"
        assert "trace:" in captured.err
