"""Tests for the single-run CLI (``python -m repro.system``)."""

import json

import pytest

from repro.system.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["spmv"])
        assert args.benchmark == "spmv"
        assert args.mesh == "7x7"
        assert args.gpu == "mi100"
        assert not args.hdpat

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_hdpat_and_ablation_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["spmv", "--hdpat", "--ablation", "route"])


class TestMain:
    def test_baseline_text_output(self, capsys):
        assert main(["aes", "--mesh", "3x3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "AES on" in out
        assert "IOMMU:" in out

    def test_hdpat_json_output(self, capsys):
        assert main([
            "pr", "--mesh", "3x3", "--scale", "0.02", "--hdpat", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "pr"
        assert "remote_breakdown" in payload
        assert payload["exec_cycles"] > 0

    def test_ablation_flag(self, capsys):
        assert main([
            "pr", "--mesh", "3x3", "--scale", "0.02",
            "--ablation", "redirection",
        ]) == 0
        assert "redir" in capsys.readouterr().out

    def test_bad_mesh_spec(self, capsys):
        assert main(["aes", "--mesh", "banana"]) == 2
        assert "must look like" in capsys.readouterr().err

    def test_page_size_flag(self, capsys):
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02",
            "--page-size", "16384", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "page=16K" in payload["config"]

    def test_no_capacity_scaling_flag(self, capsys):
        assert main([
            "aes", "--mesh", "3x3", "--scale", "0.02",
            "--no-capacity-scaling",
        ]) == 0
