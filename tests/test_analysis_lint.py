"""hdpat-lint tests: every rule fires on a seeded violation (none is
vacuous), pragmas and baselines suppress, and the shipped tree is clean."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import lint_paths, lint_source, rules_by_id
from repro.analysis.lint import Baseline, layer_of, summarize

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def rule_ids(source, layer="sim", path="src/repro/sim/toy.py"):
    source = textwrap.dedent(source)
    return [f.rule_id for f in lint_source(source, path=path, layer=layer)]


# ----------------------------------------------------------------------
# Seeded violations: every rule must catch its own bug by id
# ----------------------------------------------------------------------
class TestSeededViolations:
    def test_wal001_wallclock_import_and_call(self):
        assert "WAL001" in rule_ids("from time import perf_counter\n")
        assert "WAL001" in rule_ids("import time\n")
        assert "WAL001" in rule_ids(
            "import time  # lint: disable=all\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert "WAL001" in rule_ids(
            "def f(datetime):\n"
            "    return datetime.now()\n"
        )

    def test_wal001_allowed_in_host_layers(self):
        assert rule_ids("from time import perf_counter\n", layer="exec") == []
        assert rule_ids("import time\n", layer="experiments") == []

    def test_rnd001_module_level_random(self):
        assert "RND001" in rule_ids(
            "import random  # lint: disable=all\n"
            "def f():\n"
            "    return random.randint(0, 7)\n"
        )

    def test_rnd001_seeded_instance_stays_legal(self):
        assert rule_ids(
            "import random  # lint: disable=all\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.randint(0, 7)\n"
        ) == []

    def test_rnd002_unseeded_random_any_layer(self):
        source = (
            "import random  # lint: disable=all\n"
            "rng = random.Random()\n"
        )
        assert "RND002" in rule_ids(source)
        assert "RND002" in rule_ids(source, layer="experiments")

    def test_ord001_set_iteration(self):
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    for item in set(items):\n"
            "        yield item\n"
        )
        assert "ORD001" in rule_ids(
            "def f(xs):\n"
            "    return [x for x in {1, 2, 3}]\n"
        )

    def test_ord001_sorted_set_is_fine(self):
        assert rule_ids(
            "def f(items):\n"
            "    for item in sorted(set(items)):\n"
            "        yield item\n"
        ) == []

    def test_ord001_downgraded_to_warning_in_host_layers(self):
        findings = lint_source(
            "def f(items):\n    for item in set(items):\n        pass\n",
            layer="exec",
        )
        assert [f.severity for f in findings] == ["warning"]

    def test_mut001_mutable_default(self):
        assert "MUT001" in rule_ids("def f(acc=[]):\n    return acc\n")
        assert "MUT001" in rule_ids("def f(*, acc={}):\n    return acc\n")
        assert "MUT001" in rule_ids("def f(acc=list()):\n    return acc\n")

    def test_pck001_lambda_in_exec_layer_only(self):
        source = "factory = lambda: 1\n"
        assert "PCK001" in rule_ids(source, layer="exec")
        assert rule_ids(source, layer="gpm") == []

    def test_flt001_float_into_schedule(self):
        assert "FLT001" in rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(n / 2, callback)\n"
        )
        assert "FLT001" in rule_ids(
            "def f(sim):\n"
            "    sim.schedule_at(1.5, callback)\n"
        )

    def test_flt001_int_truncation_is_fine(self):
        assert rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(int(n / 2), callback)\n"
        ) == []

    def test_flt001_division_on_cycle_variable(self):
        assert "FLT001" in rule_ids(
            "def f(self):\n"
            "    self.busy_until /= 2\n"
        )

    def test_met001_metric_name_scheme(self):
        assert "MET001" in rule_ids(
            "def f(registry):\n"
            "    registry.counter('IOMMU.Walks')\n"
        )
        assert rule_ids(
            "def f(registry):\n"
            "    registry.counter('iommu.walks')\n"
        ) == []


# ----------------------------------------------------------------------
# Suppression: pragmas and baseline
# ----------------------------------------------------------------------
class TestSuppression:
    def test_disable_pragma_by_rule_id(self):
        assert rule_ids(
            "def f(acc=[]):  # lint: disable=MUT001\n    return acc\n"
        ) == []

    def test_disable_all_pragma(self):
        assert rule_ids("import time  # lint: disable=all\n") == []

    def test_allow_wallclock_pragma(self):
        assert rule_ids("import time  # lint: allow-wallclock\n") == []

    def test_pragma_only_covers_its_line(self):
        findings = rule_ids(
            "import time  # lint: allow-wallclock\n"
            "from time import perf_counter\n"
        )
        assert findings == ["WAL001"]

    def test_baseline_suppresses_exact_and_wildcard(self):
        findings = lint_source("def f(acc=[]):\n    return acc\n",
                               path="src/repro/sim/toy.py", layer="sim")
        assert len(findings) == 1
        exact = Baseline([findings[0].key()])
        assert exact.covers(findings[0])
        wildcard = Baseline(["MUT001:src/repro/sim/toy.py:*"])
        assert wildcard.covers(findings[0])
        other = Baseline(["WAL001:src/repro/sim/toy.py:*"])
        assert not other.covers(findings[0])

    def test_baseline_load_ignores_comments(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text("# comment\n\nMUT001:a/b.py:3\n")
        baseline = Baseline.load(str(baseline_file))
        assert len(baseline) == 1


# ----------------------------------------------------------------------
# Driver: layers, tree cleanliness, CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_layer_mapping(self):
        assert layer_of("src/repro/noc/link.py") == "noc"
        assert layer_of("src/repro/units.py") == "root"
        assert layer_of("src/repro/exec/jobs.py") == "exec"
        assert layer_of("/abs/elsewhere/module.py") == "root"

    def test_shipped_tree_is_clean_with_empty_baseline(self):
        baseline = Baseline.load(os.path.join(REPO_ROOT,
                                              "analysis-baseline.txt"))
        assert len(baseline) == 0, "baseline must stay empty"
        findings, baselined = lint_paths([SRC_REPRO], baseline=baseline)
        assert findings == [], [f.to_dict() for f in findings]
        assert baselined == 0

    def test_summarize_counts(self):
        findings = lint_source("def f(a=[], b={}):\n    return a, b\n",
                               layer="sim")
        summary = summarize(findings)
        assert summary["MUT001"] == 2
        assert summary["errors"] == 2

    def test_rules_registry_has_stable_ids(self):
        assert set(rules_by_id()) == {
            "WAL001", "RND001", "RND002", "ORD001",
            "MUT001", "PCK001", "FLT001", "MET001",
        }

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", layer="sim")
        assert [f.rule_id for f in findings] == ["PARSE"]


class TestCli:
    def _run(self, *args, cwd=REPO_ROOT):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=cwd,
        )

    def test_lint_clean_tree_exits_zero(self):
        proc = self._run("lint", SRC_REPRO, "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["summary"]["errors"] == 0

    def test_lint_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f(acc=[]):\n    return acc\n")
        proc = self._run("lint", str(bad), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert {f["rule"] for f in payload["findings"]} == {"WAL001", "MUT001"}

    def test_write_baseline_then_lint_with_it_passes(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(acc=[]):\n    return acc\n")
        baseline = tmp_path / "baseline.txt"
        write = self._run("lint", str(bad), "--write-baseline", str(baseline))
        assert write.returncode == 0
        rerun = self._run("lint", str(bad), "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout

    def test_sanitize_verb_clean(self):
        proc = self._run("sanitize", "--scale", "0.02", "--mesh", "5x5",
                         "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["sanitizers"]["violations"] == 0
        assert "determinism_digest" in payload
