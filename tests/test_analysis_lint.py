"""hdpat-lint tests: every rule fires on a seeded violation (none is
vacuous), pragmas and baselines suppress, and the shipped tree is clean."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import lint_paths, lint_source, rules_by_id
from repro.analysis.lint import (
    Baseline,
    layer_of,
    summarize,
    update_baseline_file,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def rule_ids(source, layer="sim", path="src/repro/sim/toy.py"):
    source = textwrap.dedent(source)
    return [f.rule_id for f in lint_source(source, path=path, layer=layer)]


# ----------------------------------------------------------------------
# Seeded violations: every rule must catch its own bug by id
# ----------------------------------------------------------------------
class TestSeededViolations:
    def test_wal001_wallclock_import_and_call(self):
        assert "WAL001" in rule_ids("from time import perf_counter\n")
        assert "WAL001" in rule_ids("import time\n")
        assert "WAL001" in rule_ids(
            "import time  # lint: disable=all\n"
            "def f():\n"
            "    return time.time()\n"
        )
        assert "WAL001" in rule_ids(
            "def f(datetime):\n"
            "    return datetime.now()\n"
        )

    def test_wal001_allowed_in_host_layers(self):
        assert rule_ids("from time import perf_counter\n", layer="exec") == []
        assert rule_ids("import time\n", layer="experiments") == []

    def test_rnd001_module_level_random(self):
        assert "RND001" in rule_ids(
            "import random  # lint: disable=all\n"
            "def f():\n"
            "    return random.randint(0, 7)\n"
        )

    def test_rnd001_seeded_instance_stays_legal(self):
        assert rule_ids(
            "import random  # lint: disable=all\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.randint(0, 7)\n"
        ) == []

    def test_rnd002_unseeded_random_any_layer(self):
        source = (
            "import random  # lint: disable=all\n"
            "rng = random.Random()\n"
        )
        assert "RND002" in rule_ids(source)
        assert "RND002" in rule_ids(source, layer="experiments")

    def test_ord001_set_iteration(self):
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    for item in set(items):\n"
            "        yield item\n"
        )
        assert "ORD001" in rule_ids(
            "def f(xs):\n"
            "    return [x for x in {1, 2, 3}]\n"
        )

    def test_ord001_sorted_set_is_fine(self):
        assert rule_ids(
            "def f(items):\n"
            "    for item in sorted(set(items)):\n"
            "        yield item\n"
        ) == []

    def test_ord001_set_name_iteration(self):
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    keys = frozenset(items)\n"
            "    for k in keys:\n"
            "        yield k\n"
        )
        # Propagates through a plain alias assignment.
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    a = set(items)\n"
            "    b = a\n"
            "    return [x for x in b]\n"
        )

    def test_ord001_set_pop_arbitrary_element(self):
        assert "ORD001" in rule_ids(
            "def f():\n"
            "    seen = set()\n"
            "    seen.add(1)\n"
            "    seen.pop()\n"
        )
        # list.pop() and keyed dict.pop('k') stay legal.
        assert rule_ids(
            "def f(d):\n"
            "    stack = [1]\n"
            "    stack.pop()\n"
            "    d.pop('k')\n"
        ) == []

    def test_ord001_fromkeys_dict_inherits_set_order(self):
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    s = set(items)\n"
            "    d = dict.fromkeys(s)\n"
            "    for k in d:\n"
            "        yield k\n"
        )
        assert "ORD001" in rule_ids(
            "def f(items):\n"
            "    d = dict.fromkeys(set(items))\n"
            "    for k in d.keys():\n"
            "        yield k\n"
        )

    def test_ord001_rebound_name_clears_taint(self):
        assert rule_ids(
            "def f(items):\n"
            "    seen = set(items)\n"
            "    seen = sorted(seen)\n"
            "    for k in seen:\n"
            "        yield k\n"
        ) == []

    def test_ord001_taint_is_scope_local(self):
        # The nested function's 'seen' is a different binding; the outer
        # list must not inherit the inner taint (or vice versa).
        assert rule_ids(
            "def outer(items):\n"
            "    seen = list(items)\n"
            "    def inner():\n"
            "        seen = set()\n"
            "        seen.add(1)\n"
            "    for k in seen:\n"
            "        yield k\n"
        ) == []

    def test_ord001_downgraded_to_warning_in_host_layers(self):
        findings = lint_source(
            "def f(items):\n    for item in set(items):\n        pass\n",
            layer="exec",
        )
        assert [f.severity for f in findings] == ["warning"]

    def test_mut001_mutable_default(self):
        assert "MUT001" in rule_ids("def f(acc=[]):\n    return acc\n")
        assert "MUT001" in rule_ids("def f(*, acc={}):\n    return acc\n")
        assert "MUT001" in rule_ids("def f(acc=list()):\n    return acc\n")

    def test_pck001_lambda_in_exec_layer_only(self):
        source = "factory = lambda: 1\n"
        assert "PCK001" in rule_ids(source, layer="exec")
        assert rule_ids(source, layer="gpm") == []

    def test_flt001_float_into_schedule(self):
        assert "FLT001" in rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(n / 2, callback)\n"
        )
        assert "FLT001" in rule_ids(
            "def f(sim):\n"
            "    sim.schedule_at(1.5, callback)\n"
        )

    def test_flt001_int_truncation_is_fine(self):
        assert rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(int(n / 2), callback)\n"
        ) == []

    def test_flt001_division_on_cycle_variable(self):
        assert "FLT001" in rule_ids(
            "def f(self):\n"
            "    self.busy_until /= 2\n"
        )

    def test_met001_metric_name_scheme(self):
        assert "MET001" in rule_ids(
            "def f(registry):\n"
            "    registry.counter('IOMMU.Walks')\n"
        )
        assert rule_ids(
            "def f(registry):\n"
            "    registry.counter('iommu.walks')\n"
        ) == []


# ----------------------------------------------------------------------
# Suppression: pragmas and baseline
# ----------------------------------------------------------------------
class TestSuppression:
    def test_disable_pragma_by_rule_id(self):
        assert rule_ids(
            "def f(acc=[]):  # lint: disable=MUT001\n    return acc\n"
        ) == []

    def test_disable_all_pragma(self):
        assert rule_ids("import time  # lint: disable=all\n") == []

    def test_allow_wallclock_pragma(self):
        assert rule_ids("import time  # lint: allow-wallclock\n") == []

    def test_pragma_only_covers_its_line(self):
        findings = rule_ids(
            "import time  # lint: allow-wallclock\n"
            "from time import perf_counter\n"
        )
        assert findings == ["WAL001"]

    def test_pragma_anywhere_on_multiline_statement(self):
        # The finding anchors on the statement's first line; the pragma
        # sits on a continuation line (the common layout once a call is
        # wrapped by a formatter).  The whole statement range counts.
        assert rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(\n"
            "        n / 2,  # lint: disable=FLT001\n"
            "        callback,\n"
            "    )\n"
        ) == []
        assert rule_ids(
            "def f(sim, n):\n"
            "    sim.schedule(  # lint: disable=FLT001\n"
            "        n / 2,\n"
            "        callback,\n"
            "    )\n"
        ) == []

    def test_multiline_pragma_does_not_blanket_compound_bodies(self):
        # A pragma on a 'for' header must not suppress findings inside
        # the loop body (only the header lines are the statement range).
        findings = rule_ids(
            "def f(sim, items):  # lint: disable=FLT001\n"
            "    for item in items:\n"
            "        sim.schedule(item / 2, callback)\n"
        )
        assert findings == ["FLT001"]

    def test_baseline_suppresses_exact_and_wildcard(self):
        findings = lint_source("def f(acc=[]):\n    return acc\n",
                               path="src/repro/sim/toy.py", layer="sim")
        assert len(findings) == 1
        exact = Baseline([findings[0].key()])
        assert exact.covers(findings[0])
        wildcard = Baseline(["MUT001:src/repro/sim/toy.py:*"])
        assert wildcard.covers(findings[0])
        other = Baseline(["WAL001:src/repro/sim/toy.py:*"])
        assert not other.covers(findings[0])

    def test_baseline_load_ignores_comments(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text("# comment\n\nMUT001:a/b.py:3\n")
        baseline = Baseline.load(str(baseline_file))
        assert len(baseline) == 1

    def test_baseline_load_strips_inline_justifications(self, tmp_path):
        baseline_file = tmp_path / "baseline.txt"
        baseline_file.write_text(
            "# header\n"
            "MUT001:a/b.py:3  # reviewed: harmless in this context\n"
            "ORD001:a/c.py:*  # output order pinned downstream\n"
        )
        baseline = Baseline.load(str(baseline_file))
        assert len(baseline) == 2
        finding = lint_source(
            "def f(items):\n    for i in set(items):\n        pass\n",
            path="a/c.py", layer="sim",
        )[0]
        # The wildcard entry parsed despite its trailing comment.
        assert baseline.covers(finding)


# ----------------------------------------------------------------------
# Baseline regeneration (--update-baseline)
# ----------------------------------------------------------------------
class TestUpdateBaseline:
    def _findings(self):
        return lint_source(
            "import time\n\n\ndef f(acc=[]):\n    return acc\n",
            path="src/repro/sim/bad.py", layer="sim",
        )

    def test_writes_sorted_entries_with_default_header(self, tmp_path):
        target = tmp_path / "baseline.txt"
        count = update_baseline_file(str(target), self._findings())
        lines = target.read_text().splitlines()
        entries = [line for line in lines if not line.startswith("#")]
        assert count == len(entries) == 2
        assert entries == sorted(entries)
        assert lines[0].startswith("#")

    def test_preserves_header_and_surviving_comments(self, tmp_path):
        target = tmp_path / "baseline.txt"
        target.write_text(
            "# custom header line one\n"
            "# custom header line two\n"
            "MUT001:src/repro/sim/bad.py:4  # reviewed: accumulator\n"
            "WAL001:src/repro/gone.py:9  # stale entry, file deleted\n"
        )
        update_baseline_file(str(target), self._findings())
        content = target.read_text()
        assert content.startswith("# custom header line one\n"
                                  "# custom header line two\n")
        # Surviving entry keeps its justification; the stale one is gone.
        assert "# reviewed: accumulator" in content
        assert "gone.py" not in content

    def test_atomic_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "baseline.txt"
        update_baseline_file(str(target), self._findings())
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name != "baseline.txt"]
        assert leftovers == []

    def test_regenerated_file_round_trips_through_load(self, tmp_path):
        target = tmp_path / "baseline.txt"
        findings = self._findings()
        update_baseline_file(str(target), findings)
        baseline = Baseline.load(str(target))
        assert all(baseline.covers(f) for f in findings)


# ----------------------------------------------------------------------
# Driver: layers, tree cleanliness, CLI
# ----------------------------------------------------------------------
class TestDriver:
    def test_layer_mapping(self):
        assert layer_of("src/repro/noc/link.py") == "noc"
        assert layer_of("src/repro/units.py") == "root"
        assert layer_of("src/repro/exec/jobs.py") == "exec"
        assert layer_of("/abs/elsewhere/module.py") == "root"

    def test_shipped_tree_is_clean_with_empty_baseline(self):
        baseline = Baseline.load(os.path.join(REPO_ROOT,
                                              "analysis-baseline.txt"))
        assert len(baseline) == 0, "baseline must stay empty"
        findings, baselined = lint_paths([SRC_REPRO], baseline=baseline)
        assert findings == [], [f.to_dict() for f in findings]
        assert baselined == 0

    def test_summarize_counts(self):
        findings = lint_source("def f(a=[], b={}):\n    return a, b\n",
                               layer="sim")
        summary = summarize(findings)
        assert summary["MUT001"] == 2
        assert summary["errors"] == 2

    def test_rules_registry_has_stable_ids(self):
        assert set(rules_by_id()) == {
            "WAL001", "RND001", "RND002", "ORD001",
            "MUT001", "PCK001", "FLT001", "MET001",
        }

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", layer="sim")
        assert [f.rule_id for f in findings] == ["PARSE"]


class TestCli:
    def _run(self, *args, cwd=REPO_ROOT):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=cwd,
        )

    def test_lint_clean_tree_exits_zero(self):
        proc = self._run("lint", SRC_REPRO, "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["findings"] == []
        assert payload["summary"]["errors"] == 0

    def test_lint_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\n\ndef f(acc=[]):\n    return acc\n")
        proc = self._run("lint", str(bad), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert {f["rule"] for f in payload["findings"]} == {"WAL001", "MUT001"}

    def test_write_baseline_then_lint_with_it_passes(self, tmp_path):
        bad = tmp_path / "repro" / "sim" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(acc=[]):\n    return acc\n")
        baseline = tmp_path / "baseline.txt"
        write = self._run("lint", str(bad), "--write-baseline", str(baseline))
        assert write.returncode == 0
        rerun = self._run("lint", str(bad), "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout

    def test_sanitize_verb_clean(self):
        proc = self._run("sanitize", "--scale", "0.02", "--mesh", "5x5",
                         "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["sanitizers"]["violations"] == 0
        assert "determinism_digest" in payload
