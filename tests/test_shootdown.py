"""TLB shootdown tests: correctness of wafer-wide invalidation."""

import pytest

from repro.mem.allocator import PageAllocator
from repro.mem.page import PageTableEntry
from repro.system.shootdown import shootdown
from repro.system.wafer import WaferScaleGPU


@pytest.fixture
def loaded_wafer(small_system_config):
    wafer = WaferScaleGPU(small_system_config)
    allocator = PageAllocator(wafer.address_space, wafer.num_gpms)
    allocation = allocator.allocate_pages(16)
    wafer.install_entries(allocator.materialize(allocation))
    return wafer, allocation


class TestShootdownCorrectness:
    def test_global_page_table_unmapped(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        vpns = list(allocation.vpns())
        shootdown(wafer, vpns)
        wafer.sim.run()
        for vpn in vpns:
            assert wafer.iommu.page_table.lookup(vpn) is None

    def test_owner_local_tables_unmapped(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        shootdown(wafer, allocation.vpns())
        wafer.sim.run()
        for gpm in wafer.gpms:
            assert len(gpm.hierarchy.page_table) == 0

    def test_cached_copies_scrubbed_everywhere(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        vpn = allocation.base_vpn
        entry = wafer.iommu.page_table.lookup(vpn)
        # Spread stale copies around the wafer.
        for gpm in wafer.gpms[:4]:
            gpm.hierarchy.install_cached_remote(entry.copy_for_push())
            gpm.hierarchy.fill_from_translation(vpn, entry)
        stats = shootdown(wafer, [vpn])
        wafer.sim.run()
        assert stats.stale_entries_scrubbed > 0
        for gpm in wafer.gpms:
            assert gpm.hierarchy.l2.peek(vpn) is None
            assert gpm.hierarchy.llt.peek(vpn) is None
            assert not gpm.hierarchy.cuckoo.contains(vpn)

    def test_redirection_entries_invalidated(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        vpn = allocation.base_vpn
        # Forge redirection state if the table exists (baseline has none).
        if wafer.iommu.redirection is not None:
            wafer.iommu.redirection.update(vpn, 1)
        shootdown(wafer, [vpn])
        wafer.sim.run()
        if wafer.iommu.redirection is not None:
            assert vpn not in wafer.iommu.redirection

    def test_unmapped_vpn_is_a_noop(self, loaded_wafer):
        wafer, _ = loaded_wafer
        stats = shootdown(wafer, [999_999])
        wafer.sim.run()
        assert stats.vpns_invalidated == 1

    def test_latency_covers_farthest_round_trip(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        done_at = []
        shootdown(wafer, [allocation.base_vpn], on_complete=done_at.append)
        wafer.sim.run()
        farthest = max(
            wafer.topology.manhattan(wafer.topology.cpu_coordinate, g.coordinate)
            for g in wafer.gpms
        )
        assert done_at and done_at[0] >= 2 * farthest * wafer.config.noc.link_latency

    def test_stats_accumulate_across_shootdowns(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        vpns = list(allocation.vpns())
        shootdown(wafer, vpns[:4])
        wafer.sim.run()
        shootdown(wafer, vpns[4:8])
        wafer.sim.run()
        assert wafer.shootdown_stats.shootdowns == 2
        assert wafer.shootdown_stats.vpns_invalidated == 8
        assert wafer.shootdown_stats.mean_latency() > 0


class TestPostShootdownBehaviour:
    def test_freed_page_truly_gone_then_remappable(self, loaded_wafer):
        wafer, allocation = loaded_wafer
        vpn = allocation.base_vpn
        owner = allocation.owner_of[vpn]
        shootdown(wafer, [vpn])
        wafer.sim.run()
        # Remap the VPN to a different frame/owner — no duplicate errors.
        new_owner = (owner + 1) % wafer.num_gpms
        entry = PageTableEntry(vpn=vpn, pfn=123, owner_gpm=new_owner)
        wafer.iommu.page_table.insert(entry)
        wafer.gpms[new_owner].hierarchy.install_local_page(entry)
        assert wafer.iommu.page_table.lookup(vpn).owner_gpm == new_owner
