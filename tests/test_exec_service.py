"""Tests for the multi-host sweep service: the fcntl-locked JobLedger,
host failover with work-stealing, HostFaultPlan chaos, tenant fairness
with back-pressure, and the serve/submit/status CLI verbs.

The load-bearing invariant carries over from the single-machine chaos
layer: host faults perturb *liveness* only, so a chaos-faulted,
host-killed, work-stolen campaign's result table is byte-identical to
``--jobs 1`` serial execution of the same grid.

Host crashes are real process deaths (``os._exit`` / SIGKILL), so every
end-to-end failover test runs its hosts in ``multiprocessing.Process``
children — a crash must never take pytest down with it.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.errors import (
    BackPressureError,
    CampaignError,
    ConfigurationError,
    ExecConfigError,
    ServiceError,
)
from repro.exec import SweepExecutor, SweepManifest, make_job
from repro.exec.diskcache import DiskResultCache
from repro.exec.jobs import execute_job
from repro.exec.ledger import JobLedger
from repro.exec.progress import SweepHeartbeat, merge_heartbeat_streams
from repro.exec.resilience import CRASH, OK, SLOW, STALL, HostFaultPlan
from repro.exec.service import Coordinator, WorkerHost, cell_job
from repro.experiments.cli import main


def _entries(count, tenant_tag=""):
    """Synthetic ledger entries: (cache_key, cell, job_key) tuples."""
    return [
        (
            f"key-{tenant_tag}{i}",
            ["baseline", "aes", 0.02, i],
            f"jk-{tenant_tag}{i}",
        )
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# HostFaultPlan
# ---------------------------------------------------------------------------
class TestHostFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostFaultPlan(crash_prob=1.5)
        with pytest.raises(ConfigurationError):
            HostFaultPlan(crash_prob=0.6, stall_prob=0.6)
        with pytest.raises(ConfigurationError):
            HostFaultPlan(crash_point="mid-sleep")
        with pytest.raises(ConfigurationError):
            HostFaultPlan(stall_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            HostFaultPlan(slow_factor=0.5)

    def test_json_round_trip(self):
        plan = HostFaultPlan(
            seed=9,
            crash_prob=0.2,
            stall_prob=0.1,
            slow_prob=0.05,
            crash_point="commit",
            stall_seconds=2.5,
            slow_factor=3.0,
            doomed_keys=("b", "a"),
        )
        revived = HostFaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert revived == plan
        assert revived.doomed_keys == ("a", "b")  # sorted + deduped

    def test_verdicts_deterministic_and_hold_dependent(self):
        plan = HostFaultPlan(seed=3, crash_prob=0.3, stall_prob=0.3, slow_prob=0.3)
        keys = [f"job-{i}" for i in range(64)]
        first = [plan.verdict_for(k, 0) for k in keys]
        assert first == [plan.verdict_for(k, 0) for k in keys]
        # All verdict kinds appear across a reasonable key population...
        assert {CRASH, STALL, SLOW, OK} <= set(first)
        # ...and verdicts are drawn per (key, hold), not per key.
        assert first != [plan.verdict_for(k, 1) for k in keys]

    def test_doomed_key_crashes_first_hold_only(self):
        plan = HostFaultPlan(seed=0, doomed_keys=("victim",))
        assert not plan.is_empty
        assert plan.verdict_for("victim", 0) == CRASH
        # The steal — hold 1 — survives by construction.
        assert plan.verdict_for("victim", 1) == OK
        assert plan.verdict_for("bystander", 0) == OK

    def test_empty_plan(self):
        assert HostFaultPlan().is_empty
        assert HostFaultPlan().verdict_for("anything", 0) == OK


# ---------------------------------------------------------------------------
# JobLedger: leases, fairness, back-pressure
# ---------------------------------------------------------------------------
class TestJobLedger:
    def test_missing_ledger_raises(self, tmp_path):
        with pytest.raises(ServiceError):
            JobLedger(tmp_path / "nowhere")

    def test_config_validation(self, tmp_path):
        with pytest.raises(ExecConfigError):
            JobLedger(tmp_path, create=True, lease_ttl=0.0)
        with pytest.raises(ExecConfigError):
            JobLedger(tmp_path, create=True, max_attempts=0)

    def test_submit_claim_commit_lifecycle(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        summary = ledger.submit("c1", "alice", _entries(3))
        assert summary["total"] == 3 and summary["new"] == 3
        claim = ledger.claim("h1")
        assert claim["key"] == "key-0" and claim["hold"] == 0
        assert ledger.commit(claim["key"], "h1") is True
        # First-writer-wins: a second commit is a counted dedup.
        assert ledger.commit(claim["key"], "h2") is False
        progress = ledger.progress("c1")
        assert progress["done"] == 1 and progress["pending"] == 2
        assert ledger.snapshot()["counters"]["dedup_commits"] == 1

    def test_duplicate_campaign_rejected(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        ledger.submit("c1", "alice", _entries(2))
        with pytest.raises(CampaignError):
            ledger.submit("c1", "bob", _entries(2))

    def test_cross_campaign_dedup(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        ledger.submit("c1", "alice", _entries(3))
        summary = ledger.submit("c2", "alice", _entries(5))
        assert summary["deduplicated"] == 3 and summary["new"] == 2
        assert ledger.progress("c2")["total"] == 5

    def test_precommitted_keys_enter_done(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        entries = _entries(3)
        summary = ledger.submit(
            "c1", "alice", entries, precommitted={entries[0][0]}
        )
        assert summary["precommitted"] == 1
        progress = ledger.progress("c1")
        assert progress["done"] == 1 and progress["pending"] == 2

    def test_lease_expiry_is_stealable(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True, lease_ttl=10.0)
        ledger.submit("c1", "alice", _entries(1))
        t0 = 1000.0
        first = ledger.claim("h1", now=t0)
        assert first["hold"] == 0
        # Within the TTL nothing is claimable.
        assert ledger.claim("h2", now=t0 + 5.0) is None
        # Past the TTL the lease expires and the claim *is* the steal.
        stolen = ledger.claim("h2", now=t0 + 10.5)
        assert stolen["key"] == first["key"] and stolen["hold"] == 1
        assert ledger.progress("c1")["steals"] == 1

    def test_renew_extends_leases(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True, lease_ttl=10.0)
        ledger.submit("c1", "alice", _entries(1))
        t0 = 1000.0
        ledger.claim("h1", now=t0)
        assert ledger.renew("h1", now=t0 + 9.0) == 1
        # Would have expired at t0+10 without the renewal.
        assert ledger.claim("h2", now=t0 + 12.0) is None

    def test_release_requeues_immediately(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True, lease_ttl=1000.0)
        ledger.submit("c1", "alice", _entries(1))
        ledger.claim("h1", now=1000.0)
        assert ledger.release("h1") == 1
        assert ledger.claim("h2", now=1000.1) is not None

    def test_fail_requeues_then_terminal(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True, max_attempts=2)
        ledger.submit("c1", "alice", _entries(1))
        claim = ledger.claim("h1")
        assert ledger.fail(claim["key"], "h1", "boom") is False
        claim = ledger.claim("h1")
        assert claim["attempts"] == 1
        assert ledger.fail(claim["key"], "h1", "boom again") is True
        progress = ledger.progress("c1")
        assert progress["failed"] == 1 and progress["pending"] == 0
        assert ledger.outstanding() == 0

    def test_weighted_fair_dispatch(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        ledger.submit("heavy", "alice", _entries(30, "a"), weight=3.0)
        ledger.submit("light", "bob", _entries(30, "b"), weight=1.0)
        dispatched = {"alice": 0, "bob": 0}
        for _ in range(20):
            claim = ledger.claim("h1")
            dispatched[claim["tenant"]] += 1
            ledger.commit(claim["key"], "h1")
        # 3:1 weights → 15:5 over any window with both queues non-empty.
        assert dispatched == {"alice": 15, "bob": 5}

    def test_back_pressure_rejects_whole_and_spares_others(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        ledger.submit("a1", "alice", _entries(4, "a"), weight=2.0)
        with pytest.raises(BackPressureError) as excinfo:
            ledger.submit(
                "b1", "bob", _entries(5, "b"), weight=1.0, queue_cap=3
            )
        err = excinfo.value
        assert err.tenant == "bob" and err.cap == 3 and err.submitted == 5
        # Atomic reject: no bob campaign, no bob jobs, alice untouched.
        snapshot = ledger.snapshot()
        assert "b1" not in snapshot["campaigns"]
        assert ledger.progress()["total"] == 4
        # A capped-but-fitting submission is admitted, and both tenants
        # then drain at their fair-share weights.
        ledger.submit("b2", "bob", _entries(2, "b"), weight=1.0, queue_cap=3)
        order = []
        while True:
            claim = ledger.claim("h1")
            if claim is None:
                break
            order.append(claim["tenant"])
            ledger.commit(claim["key"], "h1")
        assert order.count("alice") == 4 and order.count("bob") == 2
        # weight 2 vs 1: alice is never behind bob by dispatch share.
        assert order[0] == "alice"

    def test_unknown_campaign(self, tmp_path):
        ledger = JobLedger(tmp_path, create=True)
        with pytest.raises(CampaignError):
            ledger.progress("ghost")


# ---------------------------------------------------------------------------
# Satellite: SweepManifest under concurrent cross-process appenders
# ---------------------------------------------------------------------------
def _manifest_appender(path, tag, count):
    manifest = SweepManifest(path, resume=True)
    for i in range(count):
        manifest.record(f"{tag}-{i}", {"tag": tag})


class TestManifestConcurrentAppend:
    def test_no_torn_records_across_processes(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        SweepManifest(path)  # create fresh
        workers = [
            multiprocessing.Process(
                target=_manifest_appender, args=(path, f"w{n}", 40)
            )
            for n in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        revived = SweepManifest(path, resume=True)
        expected = {f"w{n}-{i}" for n in range(4) for i in range(40)}
        # Every record parses (no interleaved/torn lines) and every
        # appended key survived.
        assert revived.resumed_keys == expected

    def test_flush_close_remain_callable(self, tmp_path):
        manifest = SweepManifest(str(tmp_path / "m.jsonl"))
        manifest.record("k1")
        manifest.flush()
        manifest.close()
        assert manifest.record("k1") is False  # still dedupes after close


# ---------------------------------------------------------------------------
# Satellite: DiskResultCache concurrent same-key writers
# ---------------------------------------------------------------------------
def _cache_writer(cache_dir, config, stores):
    # SystemConfig (like RunJob) is picklable, so it crosses the process
    # boundary directly.
    job = make_job(config, "aes", 0.02, seed=1)
    result = execute_job(job)
    cache = DiskResultCache(cache_dir)
    for _ in range(stores):
        cache.store(job, result)


class TestDiskCacheConcurrentWriters:
    def test_readers_never_see_torn_files(self, tmp_path, small_system_config):
        cache_dir = str(tmp_path / "cache")
        job = make_job(small_system_config, "aes", 0.02, seed=1)
        expected = execute_job(job)
        cache = DiskResultCache(cache_dir)
        cache.store(job, expected)
        writers = [
            multiprocessing.Process(
                target=_cache_writer,
                args=(cache_dir, small_system_config, 25),
            )
            for _ in range(3)
        ]
        for proc in writers:
            proc.start()
        torn = 0
        while any(proc.is_alive() for proc in writers):
            # Atomic-rename contract: the key exists from the first
            # store on, and a load mid-race is never torn/corrupt.
            loaded = cache.load(job)
            if loaded is None:
                torn += 1
            time.sleep(0.002)
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert torn == 0
        # Last writer wins; content-addressed writers all wrote the
        # same deterministic bytes, so the survivor matches serial.
        final = cache.load(job)
        assert final is not None
        assert final.exec_cycles == expected.exec_cycles


# ---------------------------------------------------------------------------
# Satellite: heartbeat host/seq fields, guards, merged streams
# ---------------------------------------------------------------------------
class TestHeartbeatHostFields:
    def test_seq_and_host_fields(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        hb = SweepHeartbeat(path, every=0.0, host_id="hostA")
        hb.beat({"total": 2, "done": 1}, force=True)
        hb.beat({"total": 2, "done": 2}, force=True)
        records = merge_heartbeat_streams([path])
        assert [r["seq"] for r in records] == [0, 1]
        assert all(r["host"] == "hostA" for r in records)
        assert all("t" in r for r in records)

    def test_no_host_id_omits_field(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        hb = SweepHeartbeat(path, every=0.0)
        hb.beat({"total": 1, "done": 1}, force=True)
        (record,) = merge_heartbeat_streams([path])
        assert "host" not in record and record["seq"] == 0

    def test_zero_elapsed_and_zero_rate_guards(self, tmp_path, monkeypatch):
        import repro.exec.progress as progress_module

        frozen = 5000.0
        monkeypatch.setattr(progress_module.time, "time", lambda: frozen)
        hb = SweepHeartbeat(str(tmp_path / "hb.jsonl"), every=0.0)
        # Zero elapsed with completions: no ZeroDivisionError, no rate.
        hb.beat({"total": 4, "done": 2, "events": 100}, force=True)
        # Zero rate with remaining work: ETA must stay null.
        hb.beat({"total": 4, "done": 0}, force=True)
        first, second = merge_heartbeat_streams([hb.path])
        assert first["jobs_per_sec"] is None
        assert first["events_per_sec"] is None
        assert first["eta_seconds"] is None
        assert second["eta_seconds"] is None

    def test_merge_orders_by_time_host_seq(self, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        with open(a, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": 2.0, "host": "a", "seq": 0}) + "\n")
            handle.write(json.dumps({"t": 3.0, "host": "a", "seq": 1}) + "\n")
        with open(b, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": 2.0, "host": "b", "seq": 0}) + "\n")
            handle.write(json.dumps({"t": 1.0, "host": "b", "seq": 1}) + "\n")
            handle.write('{"torn')  # tolerated final line
        merged = merge_heartbeat_streams([b, a, str(tmp_path / "gone.jsonl")])
        assert [(r["t"], r["host"]) for r in merged] == [
            (1.0, "b"), (2.0, "a"), (2.0, "b"), (3.0, "a"),
        ]


# ---------------------------------------------------------------------------
# Satellite: resume without a manifest fails fast
# ---------------------------------------------------------------------------
class TestResumeRequiresManifest:
    def test_executor_rejects_resume_without_manifest(self):
        with pytest.raises(ExecConfigError):
            SweepExecutor(jobs=1, resume=True)

    def test_resume_with_manifest_accepted(self, tmp_path):
        executor = SweepExecutor(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            manifest=str(tmp_path / "m.jsonl"),
            resume=True,
        )
        assert executor.manifest is not None
        executor.close()


# ---------------------------------------------------------------------------
# End-to-end: campaigns, failover, exactly-once commits
# ---------------------------------------------------------------------------
GRID = dict(schemes=["baseline"], benchmarks="aes,fir", scales=[0.02], seeds=[1, 2])


def _serial_table():
    from repro.experiments import sweep as sweep_module
    from repro.experiments.common import RunCache

    return sweep_module.run(
        benchmarks=GRID["benchmarks"],
        cache=RunCache(),
        schemes=GRID["schemes"],
        scales=GRID["scales"],
        seeds=GRID["seeds"],
    ).format_table()


def _run_host(root, host_id, faults=None, poll=0.05):
    plan = HostFaultPlan.from_dict(faults) if faults else None
    WorkerHost(root, host_id=host_id, faults=plan, poll=poll).run()


@pytest.fixture(scope="module")
def serial_table():
    return _serial_table()


class TestServiceEndToEnd:
    def test_single_host_drain_and_byte_identical_table(
        self, tmp_path, serial_table
    ):
        coordinator = Coordinator(tmp_path, lease_ttl=30.0)
        summary = coordinator.submit("c1", "alice", **GRID)
        assert summary["total"] == 4 and summary["new"] == 4
        host_summary = WorkerHost(tmp_path, host_id="h1", poll=0.05).run()
        assert host_summary["done"] == 4 and host_summary["exit"] == "drained"
        progress = coordinator.ledger.progress("c1")
        assert progress["done"] == 4 and progress["failed"] == 0
        assert coordinator.result_table("c1").format_table() == serial_table

    def test_resubmission_precommits_from_shared_cache(self, tmp_path):
        import shutil

        root_a = tmp_path / "a"
        coordinator = Coordinator(root_a, lease_ttl=30.0)
        coordinator.submit("c1", "alice", **GRID)
        WorkerHost(root_a, host_id="h1", poll=0.05).run()
        # Same ledger, same grid: the ledger's own dedup absorbs it.
        summary = coordinator.submit("c2", "bob", **GRID)
        assert summary["deduplicated"] == 4 and summary["new"] == 0
        assert coordinator.ledger.outstanding() == 0
        # A *fresh* service root inheriting the shared result cache:
        # every key is already on disk, so the jobs enter pre-committed
        # and no host ever has to run.
        root_b = tmp_path / "b"
        root_b.mkdir()
        shutil.copytree(root_a / "cache", root_b / "cache")
        fresh = Coordinator(root_b, lease_ttl=30.0)
        summary = fresh.submit("c1", "alice", **GRID)
        assert summary["precommitted"] == 4 and summary["new"] == 0
        assert fresh.ledger.outstanding() == 0
        assert fresh.ledger.progress("c1")["done"] == 4

    def test_incomplete_campaign_has_no_table(self, tmp_path):
        coordinator = Coordinator(tmp_path, lease_ttl=30.0)
        coordinator.submit("c1", "alice", **GRID)
        with pytest.raises(CampaignError):
            coordinator.result_table("c1")

    def test_chaos_doomed_host_failover_byte_identical(
        self, tmp_path, serial_table
    ):
        """Seeded HostFaultPlan failover: the doomed job's first claimant
        hard-crashes mid-lease; the surviving host steals and finishes."""
        coordinator = Coordinator(tmp_path, lease_ttl=1.0)
        coordinator.submit("c1", "alice", **GRID)
        faults = HostFaultPlan(
            seed=1, doomed_keys=(cell_job("baseline", "aes", 0.02, 1).job_key(),)
        ).to_dict()
        hosts = [
            multiprocessing.Process(
                target=_run_host, args=(str(tmp_path), f"h{n}", faults)
            )
            for n in range(2)
        ]
        for proc in hosts:
            proc.start()
        for proc in hosts:
            proc.join(timeout=180)
        # Exactly one host died at the chaos crash point; the other
        # drained the ledger, stealing the expired lease.
        assert sorted(proc.exitcode for proc in hosts) == [0, 137]
        progress = coordinator.ledger.progress("c1")
        assert progress["done"] == 4 and progress["failed"] == 0
        assert progress["steals"] >= 1
        assert coordinator.result_table("c1").format_table() == serial_table

    def test_sigkill_host_failover_byte_identical(
        self, tmp_path, serial_table
    ):
        """SIGKILL one of two hosts mid-campaign (while it provably holds
        a lease — it stalls before committing); the survivor steals."""
        coordinator = Coordinator(tmp_path, lease_ttl=1.0)
        coordinator.submit("c1", "alice", **GRID)
        # Host A stalls forever before every commit, so from its first
        # claim until the SIGKILL it is guaranteed to hold a live lease.
        stall_all = HostFaultPlan(
            seed=0, stall_prob=1.0, stall_seconds=600.0
        ).to_dict()
        victim = multiprocessing.Process(
            target=_run_host, args=(str(tmp_path), "victim", stall_all)
        )
        victim.start()
        deadline = time.time() + 120
        while time.time() < deadline:
            if coordinator.ledger.progress("c1")["leased"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("victim host never claimed a job")
        victim.kill()  # SIGKILL: no teardown, lease left dangling
        victim.join(timeout=60)
        survivor = WorkerHost(tmp_path, host_id="survivor", poll=0.05).run()
        assert survivor["exit"] == "drained"
        progress = coordinator.ledger.progress("c1")
        assert progress["done"] == 4 and progress["failed"] == 0
        assert progress["steals"] >= 1
        assert coordinator.result_table("c1").format_table() == serial_table

    def test_stalled_host_late_commit_is_dedup(self, tmp_path):
        """Exactly-once past commit: a stalled host's stolen job is
        finished elsewhere; its own late commit lands as a dedup, never
        a second result."""
        coordinator = Coordinator(tmp_path, lease_ttl=1.0)
        coordinator.submit(
            "c1", "alice",
            schemes=["baseline"], benchmarks="aes", scales=[0.02], seeds=[1],
        )
        stall_first = HostFaultPlan(
            seed=0, stall_prob=1.0, stall_seconds=4.0
        ).to_dict()
        staller = multiprocessing.Process(
            target=_run_host, args=(str(tmp_path), "staller", stall_first)
        )
        staller.start()
        deadline = time.time() + 120
        while time.time() < deadline:
            if coordinator.ledger.progress("c1")["leased"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("staller never claimed the job")
        # Survivor steals once the stalled lease expires (~1s), then
        # serves the result from the shared cache the staller already
        # durably stored before its stall.
        survivor = WorkerHost(tmp_path, host_id="survivor", poll=0.05).run()
        assert survivor["done"] == 1
        staller.join(timeout=120)
        assert staller.exitcode == 0  # stall is silence, not death
        snapshot = coordinator.ledger.snapshot()
        assert snapshot["counters"]["dedup_commits"] == 1
        (job,) = snapshot["jobs"].values()
        assert job["state"] == "done" and job["holds"] == 2


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------
class TestCliService:
    def test_submit_serve_status_round_trip(
        self, tmp_path, capsys, serial_table
    ):
        root = str(tmp_path / "svc")
        out = str(tmp_path / "table.txt")
        assert main([
            "submit", "--service-dir", root, "--campaign", "c1",
            "--tenant", "alice", "--schemes", "baseline",
            "--benchmarks", "aes,fir", "--scales", "0.02", "--seeds", "1,2",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["total"] == 4
        assert main([
            "serve", "--service-dir", root, "--host-id", "h1",
            "--poll", "0.05",
        ]) == 0
        capsys.readouterr()
        assert main([
            "status", "--service-dir", root, "--campaign", "c1",
            "--output", out,
        ]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["progress"]["done"] == 4
        assert "h1" in status["hosts"]
        with open(out, "r", encoding="utf-8") as handle:
            assert handle.read() == serial_table + "\n\n"

    def test_submit_back_pressure_exit_code(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert main([
            "submit", "--service-dir", root, "--campaign", "big",
            "--tenant", "bob", "--schemes", "baseline",
            "--benchmarks", "aes,fir", "--scales", "0.02",
            "--seeds", "1,2", "--queue-cap", "3",
        ]) == 4
        assert "back-pressure" in capsys.readouterr().err
        # Atomic reject: the campaign is absent, so the name is free.
        assert main([
            "submit", "--service-dir", root, "--campaign", "big",
            "--tenant", "bob", "--schemes", "baseline",
            "--benchmarks", "aes", "--scales", "0.02", "--seeds", "1",
            "--queue-cap", "3",
        ]) == 0

    def test_status_incomplete_campaign_exit_code(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert main([
            "submit", "--service-dir", root, "--campaign", "c1",
            "--tenant", "alice", "--schemes", "baseline",
            "--benchmarks", "aes", "--scales", "0.02", "--seeds", "1",
        ]) == 0
        capsys.readouterr()
        assert main([
            "status", "--service-dir", root, "--campaign", "c1",
            "--output", str(tmp_path / "t.txt"),
        ]) == 5

    def test_status_without_ledger_is_config_error(self, tmp_path, capsys):
        assert main(
            ["status", "--service-dir", str(tmp_path / "empty")]
        ) == 2
        assert "no job ledger" in capsys.readouterr().err

    def test_serve_requires_service_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_duplicate_campaign_exit_code(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        args = [
            "submit", "--service-dir", root, "--campaign", "c1",
            "--tenant", "alice", "--schemes", "baseline",
            "--benchmarks", "aes", "--scales", "0.02", "--seeds", "1",
        ]
        assert main(args) == 0
        assert main(args) == 2
