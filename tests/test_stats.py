"""Tests for the statistics package: histograms, time series, breakdowns."""

import pytest

from repro.stats.histogram import BucketHistogram, Histogram, merge_histograms
from repro.stats.latency import LatencyBreakdown
from repro.stats.timeseries import PeriodicSampler, TimeSeries, WindowedCounter


class TestHistogram:
    def test_add_and_count(self):
        histogram = Histogram()
        histogram.add(3)
        histogram.add(3)
        histogram.add(5)
        assert histogram.count(3) == 2
        assert histogram.count(5) == 1
        assert histogram.total == 3

    def test_fraction(self):
        histogram = Histogram()
        histogram.add(1, 3)
        histogram.add(2, 1)
        assert histogram.fraction(1) == pytest.approx(0.75)

    def test_mean(self):
        histogram = Histogram()
        histogram.add(2, 2)
        histogram.add(4, 2)
        assert histogram.mean() == pytest.approx(3.0)

    def test_keys_sorted(self):
        histogram = Histogram()
        for key in (5, 1, 3):
            histogram.add(key)
        assert histogram.keys() == [1, 3, 5]

    def test_empty_fraction_zero(self):
        assert Histogram().fraction(1) == 0.0

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(1, 2)
        b.add(1, 1)
        b.add(2, 1)
        merged = merge_histograms([a, b])
        assert merged.count(1) == 3
        assert merged.count(2) == 1


class TestBucketHistogram:
    def test_bucket_assignment(self):
        histogram = BucketHistogram([10, 100])
        histogram.add(5)
        histogram.add(50)
        histogram.add(500)
        assert histogram.counts == [1, 1, 1]

    def test_boundary_goes_to_upper_bucket(self):
        histogram = BucketHistogram([10])
        histogram.add(10)
        assert histogram.counts == [0, 1]

    def test_fractions(self):
        histogram = BucketHistogram([10])
        histogram.add(1, 3)
        histogram.add(20, 1)
        assert histogram.fractions() == pytest.approx([0.75, 0.25])

    def test_cumulative_fraction(self):
        histogram = BucketHistogram([10, 100])
        histogram.add(5, 1)
        histogram.add(50, 1)
        histogram.add(500, 2)
        assert histogram.cumulative_fraction_below(100) == pytest.approx(0.5)

    def test_labels_cover_all_buckets(self):
        histogram = BucketHistogram([10, 100])
        assert len(histogram.labels()) == 3

    def test_invalid_boundaries(self):
        with pytest.raises(ValueError):
            BucketHistogram([10, 5])
        with pytest.raises(ValueError):
            BucketHistogram([])


class TestLatencyBreakdown:
    def test_means_and_percentages(self):
        breakdown = LatencyBreakdown(["a", "b"])
        breakdown.record(a=10, b=30)
        breakdown.record(a=20, b=40)
        assert breakdown.mean("a") == pytest.approx(15.0)
        assert breakdown.percentages()["b"] == pytest.approx(70.0)

    def test_dominant_phase(self):
        breakdown = LatencyBreakdown(["x", "y", "z"])
        breakdown.record(x=1, y=100, z=5)
        assert breakdown.dominant_phase() == "y"

    def test_unknown_phase_rejected(self):
        breakdown = LatencyBreakdown(["a"])
        with pytest.raises(KeyError):
            breakdown.record(b=5)

    def test_negative_latency_rejected(self):
        breakdown = LatencyBreakdown(["a"])
        with pytest.raises(ValueError):
            breakdown.record(a=-1)

    def test_rows_structure(self):
        breakdown = LatencyBreakdown(["a", "b"])
        breakdown.record(a=10, b=10)
        rows = breakdown.rows()
        assert [row["phase"] for row in rows] == ["a", "b"]
        assert rows[0]["percent"] == pytest.approx(50.0)

    def test_empty_percentages(self):
        breakdown = LatencyBreakdown(["a"])
        assert breakdown.percentages() == {"a": 0.0}


class TestTimeSeries:
    def test_sample_and_stats(self):
        series = TimeSeries("s")
        series.sample(0, 1.0)
        series.sample(10, 3.0)
        assert series.max() == 3.0
        assert series.mean() == pytest.approx(2.0)
        assert series.points() == [(0, 1.0), (10, 3.0)]

    def test_empty_stats(self):
        series = TimeSeries()
        assert series.max() == 0.0
        assert series.mean() == 0.0


class TestWindowedCounter:
    def test_window_bucketing(self):
        counter = WindowedCounter(100)
        counter.record(5)
        counter.record(50)
        counter.record(150)
        assert counter.windows == [2, 1]

    def test_series_cycle_labels(self):
        counter = WindowedCounter(100)
        counter.record(250)
        assert counter.series() == [(0, 0), (100, 0), (200, 1)]

    def test_normalized_shape(self):
        counter = WindowedCounter(10)
        counter.record(5, 2)
        counter.record(15, 4)
        assert counter.normalized_shape() == pytest.approx([0.5, 1.0])

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedCounter(0)


class TestPeriodicSampler:
    def test_samples_while_events_pending(self, sim):
        series = TimeSeries()
        values = iter(range(100))
        PeriodicSampler(sim, lambda: next(values), period=10, series=series)
        sim.schedule(35, lambda: None)  # keep the sim alive until cycle 35
        sim.run()
        assert series.times == [10, 20, 30, 40]

    def test_stop_disables_sampling(self, sim):
        series = TimeSeries()
        sampler = PeriodicSampler(sim, lambda: 1.0, period=10, series=series)
        sampler.stop()
        sim.schedule(50, lambda: None)
        sim.run()
        assert len(series) == 0
