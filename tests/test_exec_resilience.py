"""Tests for repro.exec.resilience: chaos plans, checkpoint/resume,
speculation, the circuit breaker, and graceful abort.

The overarching invariant: chaos only ever perturbs worker *timing and
liveness*, so a faulted / interrupted / resumed / speculated sweep must
produce result digests byte-identical to plain serial execution.
"""

import json
import signal

import pytest

from repro.analysis.sanitizers import result_digest
from repro.errors import ConfigurationError, ReproError, SweepAbortedError
from repro.exec import (
    SweepExecutor,
    SweepManifest,
    WorkerFaultPlan,
    make_job,
    read_heartbeats,
    read_jsonl_prefix,
)
from repro.exec.resilience import CRASH, HANG, OK
from repro.experiments.cli import main
from repro.faults.retry import RetryPolicy


@pytest.fixture(scope="module")
def small_system_config(tiny_gpm_config):
    # Module-scoped twin of the conftest fixture so expensive runs are
    # shared across this file's tests.
    from repro.config.iommu import IOMMUConfig
    from repro.config.system import SystemConfig

    return SystemConfig(
        mesh_width=3,
        mesh_height=3,
        gpm=tiny_gpm_config,
        iommu=IOMMUConfig(
            num_walkers=4,
            walk_latency=100,
            buffer_capacity=256,
            pw_queue_capacity=8,
            redirection_entries=64,
        ),
    )


@pytest.fixture(scope="module")
def tiny_gpm_config():
    from repro.config.gpm import GPMConfig, TLBConfig

    return GPMConfig(
        name="tiny",
        num_cus=4,
        l1_vector_tlb=TLBConfig(1, 8, 4, 4),
        l1_scalar_tlb=TLBConfig(1, 8, 4, 4),
        l1_inst_tlb=TLBConfig(1, 8, 4, 4),
        l2_tlb=TLBConfig(8, 8, 8, 32),
        gmmu_cache=TLBConfig(8, 4, 4, 8),
        gmmu_walkers=2,
        walk_latency=100,
        cuckoo_capacity=4096,
        outstanding_per_cu=4,
        issue_width=2,
    )


def _jobs(config, count, workload="aes"):
    return [
        make_job(config, workload, 0.02, seed=seed)
        for seed in range(1, count + 1)
    ]


def _serial_digests(jobs):
    results = SweepExecutor(jobs=1).map(jobs)
    return {index: result_digest(results[index]) for index in results}


def _crashy_seed(keys, retries):
    """A plan seed where every key survives within ``retries`` attempts
    and at least one crashes on its first attempt — found by scanning,
    so the test stays valid if the config repr (and thus the job keys)
    ever changes shape."""
    for seed in range(200):
        plan = WorkerFaultPlan(
            seed=seed, crash_prob=0.3, slow_prob=0.2, slow_factor=2.0
        )
        streams = [
            [plan.verdict_for(key, str(salt)) for salt in range(retries + 1)]
            for key in keys
        ]
        if (
            all(any(v != CRASH for v in stream) for stream in streams)
            and any(stream[0] == CRASH for stream in streams)
        ):
            return seed
    raise AssertionError("no suitable chaos seed in range")


def _hangy_seed(keys):
    """A plan seed where 1-2 keys hang on their first attempt."""
    for seed in range(200):
        plan = WorkerFaultPlan(seed=seed, hang_prob=0.3, hang_seconds=4.0)
        first = [plan.verdict_for(key, "0") for key in keys]
        if first.count(HANG) in (1, 2):
            return seed
    raise AssertionError("no suitable hang seed in range")


class TestWorkerFaultPlan:
    def test_json_round_trip(self):
        plan = WorkerFaultPlan(
            seed=7, crash_prob=0.25, hang_prob=0.1, slow_prob=0.05,
            slow_factor=3.0, hang_seconds=2.5,
            poison_keys=("b", "a"), crash_mode="kill",
        )
        revived = WorkerFaultPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert revived == plan
        # Poison keys are canonically sorted/deduped.
        assert plan.poison_keys == ("a", "b")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(crash_prob=1.5)
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(crash_prob=0.6, hang_prob=0.5)
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(slow_factor=0.5)
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(hang_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            WorkerFaultPlan(crash_mode="segfault")

    def test_is_empty(self):
        assert WorkerFaultPlan().is_empty
        assert not WorkerFaultPlan(crash_prob=0.1).is_empty
        assert not WorkerFaultPlan(poison_keys=("k",)).is_empty

    def test_verdicts_deterministic_and_salted(self):
        plan = WorkerFaultPlan(seed=3, crash_prob=0.5, hang_prob=0.25)
        verdicts = [plan.verdict_for("job-a", "0") for _ in range(5)]
        assert len(set(verdicts)) == 1
        # Different salts / keys / seeds draw independent streams.
        draws = {
            plan.verdict_for(f"job-{n}", str(salt))
            for n in range(20) for salt in range(3)
        }
        assert len(draws) > 1

    def test_poison_keys_always_crash(self):
        plan = WorkerFaultPlan(seed=1, poison_keys=("doomed",))
        assert all(
            plan.verdict_for("doomed", str(salt)) == CRASH
            for salt in range(10)
        )
        assert plan.verdict_for("healthy", "0") == OK

    def test_job_key_is_stable_and_config_scoped(self, small_system_config):
        a = make_job(small_system_config, "aes", 0.02, seed=1)
        b = make_job(small_system_config, "aes", 0.02, seed=1)
        c = make_job(small_system_config, "aes", 0.02, seed=2)
        assert a.job_key() == b.job_key()
        assert a.job_key() != c.job_key()
        assert "aes@0.02/s1" in a.job_key()


class TestTornLines:
    def test_read_heartbeats_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        path.write_text('{"done": 1}\n{"done": 2}\n{"done": 3, "fai')
        assert read_heartbeats(str(path)) == [{"done": 1}, {"done": 2}]

    def test_torn_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        path.write_text('{"done": 1}\n{"done": 2, "fai\n{"done": 3}\n')
        with pytest.raises(ValueError):
            read_jsonl_prefix(str(path))

    def test_manifest_resume_tolerates_and_repairs_torn_tail(
        self, tmp_path
    ):
        path = tmp_path / "manifest.jsonl"
        first = SweepManifest(str(path))
        assert first.record("k1", {"workload": "aes"})
        assert not first.record("k1")  # idempotent
        first.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2"')  # crash mid-append
        resumed = SweepManifest(str(path), resume=True)
        assert resumed.was_resumed("k1")
        assert not resumed.was_resumed("k2")
        assert resumed.record("k3")
        resumed.close()
        # The torn fragment was repaired, not appended onto.
        records = read_jsonl_prefix(str(path))
        assert [record["key"] for record in records] == ["k1", "k3"]


class TestChaosDigestParity:
    def test_chaos_sweep_matches_serial(self, small_system_config):
        jobs = _jobs(small_system_config, 4)
        keys = [job.job_key() for job in jobs]
        retries = 3
        plan = WorkerFaultPlan(
            seed=_crashy_seed(keys, retries),
            crash_prob=0.3, slow_prob=0.2, slow_factor=2.0,
        )
        chaotic = SweepExecutor(
            jobs=2, retries=retries, retry_backoff=0.05, worker_faults=plan
        )
        results = chaotic.map(jobs)
        assert set(results) == set(range(len(jobs)))
        assert not chaotic.failures
        snap = chaotic.snapshot()["sweep"]["jobs"]
        assert snap["retries"] >= 1  # at least one injected crash retried
        serial = _serial_digests(jobs)
        for index, result in results.items():
            assert result_digest(result) == serial[index]

    def test_sigkilled_worker_fails_cleanly_without_wedging(
        self, small_system_config
    ):
        jobs = _jobs(small_system_config, 3)
        doomed = jobs[1].job_key()
        plan = WorkerFaultPlan(
            seed=0, poison_keys=(doomed,), crash_mode="kill"
        )
        executor = SweepExecutor(
            jobs=2, retries=1, retry_backoff=0.05, worker_faults=plan
        )
        results = executor.map(jobs)
        # The pool survived: every non-poisoned job completed.
        assert set(results) == {0, 2}
        assert len(executor.failures) == 1
        failure = executor.failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 2  # original + one retry
        snap = executor.snapshot()["sweep"]["jobs"]
        assert snap["retries"] == 1
        serial = _serial_digests([jobs[0], jobs[2]])
        assert result_digest(results[0]) == serial[0]
        assert result_digest(results[2]) == serial[1]


class TestSpeculation:
    def test_straggler_gets_speculative_copy(self, small_system_config):
        jobs = _jobs(small_system_config, 4)
        keys = [job.job_key() for job in jobs]
        plan = WorkerFaultPlan(
            seed=_hangy_seed(keys), hang_prob=0.3, hang_seconds=4.0
        )
        executor = SweepExecutor(
            jobs=2, retries=0, worker_faults=plan, speculate=3.0
        )
        results = executor.map(jobs)
        assert set(results) == set(range(len(jobs)))
        snap = executor.snapshot()["sweep"]["jobs"]
        assert snap["speculative"] >= 1
        # The speculative copy ran chaos-suppressed and won the race
        # against the hung original.
        assert snap["speculative_wins"] >= 1
        serial = _serial_digests(jobs)
        for index, result in results.items():
            assert result_digest(result) == serial[index]


class TestCheckpointResume:
    def test_abort_after_then_resume_matches_serial(
        self, tmp_path, small_system_config
    ):
        jobs = _jobs(small_system_config, 6)
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "manifest.jsonl"
        heartbeat = tmp_path / "hb.jsonl"
        interrupted = SweepExecutor(
            jobs=2, cache_dir=cache_dir, manifest=str(manifest),
            abort_after=2, heartbeat=str(heartbeat),
        )
        with pytest.raises(SweepAbortedError) as excinfo:
            interrupted.map(jobs)
        interrupted.close()
        assert "abort_after" in str(excinfo.value.reason)
        partial = excinfo.value.results
        assert 2 <= len(partial) < len(jobs)
        assert interrupted.aborted_reason is not None
        # Terminal heartbeat record carries the aborted phase (written
        # even though map() raised).
        interrupted.finish_heartbeat()
        records = read_heartbeats(str(heartbeat))
        assert records[-1]["phase"] == "aborted"
        # Every partial result was journaled and persisted before abort.
        journaled = {
            record["key"] for record in read_jsonl_prefix(str(manifest))
        }
        assert {jobs[i].cache_key() for i in partial} <= journaled

        resumed = SweepExecutor(
            jobs=2, cache_dir=cache_dir, manifest=str(manifest), resume=True
        )
        results = {}
        remaining = []
        for index, job in enumerate(jobs):
            cached = resumed.lookup(job)
            if cached is not None:
                results[index] = cached
            else:
                remaining.append(index)
        assert len(remaining) == len(jobs) - len(partial)
        mapped = resumed.map([jobs[i] for i in remaining])
        for position, result in mapped.items():
            results[remaining[position]] = result
        resumed.close()
        snap = resumed.snapshot()["sweep"]["jobs"]
        assert snap["resumed"] == len(partial)
        assert snap["cache_hit_disk"] == len(partial)
        serial = _serial_digests(jobs)
        assert set(results) == set(serial)
        for index in serial:
            assert result_digest(results[index]) == serial[index]

    def test_heartbeat_reports_worker_liveness(
        self, tmp_path, small_system_config
    ):
        heartbeat = tmp_path / "hb.jsonl"
        executor = SweepExecutor(jobs=2, heartbeat=str(heartbeat))
        executor.map(_jobs(small_system_config, 2))
        executor.finish_heartbeat()
        final = read_heartbeats(str(heartbeat))[-1]
        assert final["phase"] == "finished"
        assert final["workers"]  # pid -> seconds-since-last-seen
        for age in final["workers"].values():
            assert age >= 0.0


class TestCircuitBreaker:
    def test_consecutive_failures_abort_with_partial_state(
        self, small_system_config
    ):
        jobs = _jobs(small_system_config, 4)
        plan = WorkerFaultPlan(
            seed=0, poison_keys=tuple(job.job_key() for job in jobs)
        )
        executor = SweepExecutor(
            jobs=2, retries=0, worker_faults=plan,
            max_consecutive_failures=2,
        )
        with pytest.raises(SweepAbortedError) as excinfo:
            executor.map(jobs)
        assert "circuit breaker" in str(excinfo.value.reason)
        assert len(excinfo.value.failures) >= 2
        assert all(f.kind == "crash" for f in excinfo.value.failures)
        assert executor.snapshot()["sweep"]["aborted_reason"]


class TestSignalAbort:
    def test_pending_signal_aborts_and_restores_handlers(
        self, small_system_config
    ):
        executor = SweepExecutor(jobs=2)
        executor._on_signal(signal.SIGTERM, None)
        assert executor._abort_requested == "SIGTERM"
        before = signal.getsignal(signal.SIGINT)
        with pytest.raises(SweepAbortedError) as excinfo:
            executor.map(_jobs(small_system_config, 3))
        assert "SIGTERM" in str(excinfo.value.reason)
        assert signal.getsignal(signal.SIGINT) is before

    def test_serial_map_honours_abort_request(self, small_system_config):
        executor = SweepExecutor(jobs=1)
        executor._on_signal(signal.SIGINT, None)
        with pytest.raises(SweepAbortedError):
            executor.map(_jobs(small_system_config, 2))


class TestRetryBackoffAudit:
    def test_no_backoff_computed_after_final_failure(
        self, small_system_config, monkeypatch
    ):
        calls = []

        def counting(self, attempt):
            calls.append(attempt)
            return 0.0

        monkeypatch.setattr(RetryPolicy, "delay_for", counting)
        executor = SweepExecutor(jobs=2, retries=2)
        jobs = [
            make_job(small_system_config, "aes", 0.02, seed=1),
            make_job(small_system_config, "no-such-benchmark", 0.02, seed=1),
        ]
        results = executor.map(jobs)
        assert set(results) == {0}
        assert executor.failures[0].attempts == 3
        # Backoff is computed for the two retries and never for the
        # final, unretried failure.
        assert calls == [0, 1]


class TestCliResilience:
    GRID = [
        "sweep", "--schemes", "baseline", "--benchmarks", "aes,fir",
        "--scales", "0.02", "--seeds", "1,2",
    ]

    def test_resume_requires_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.GRID + ["--resume", str(tmp_path / "m.jsonl")])

    def test_manifest_and_resume_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(self.GRID + [
                "--cache-dir", str(tmp_path / "c"),
                "--manifest", str(tmp_path / "m.jsonl"),
                "--resume", str(tmp_path / "m.jsonl"),
            ])

    def test_unreadable_fault_plan_is_an_error(self, tmp_path, capsys):
        assert main(self.GRID + [
            "--worker-faults", str(tmp_path / "missing.json"),
        ]) == 2
        assert "worker fault plan" in capsys.readouterr().err

    def test_finish_heartbeat_written_when_experiment_raises(
        self, tmp_path, capsys
    ):
        heartbeat = tmp_path / "hb.jsonl"
        with pytest.raises(ReproError):
            main(["no-such-experiment", "--progress", str(heartbeat)])
        records = read_heartbeats(str(heartbeat))
        assert records and records[-1]["phase"] == "finished"

    def test_chaos_interrupt_resume_byte_identical(self, tmp_path, capsys):
        serial_out = tmp_path / "serial.txt"
        resumed_out = tmp_path / "resumed.txt"
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "manifest.jsonl"
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(
            WorkerFaultPlan(seed=5, crash_prob=0.2).to_dict()
        ))
        assert main(self.GRID + [
            "--jobs", "1", "--output", str(serial_out),
        ]) == 0
        # Chaos run, interrupted after one completed job: exit code 3.
        assert main(self.GRID + [
            "--jobs", "2", "--cache-dir", str(cache_dir),
            "--manifest", str(manifest), "--abort-after", "1",
            "--worker-faults", str(plan_path),
        ]) == 3
        assert "sweep aborted" in capsys.readouterr().err
        assert read_jsonl_prefix(str(manifest))  # progress journaled
        metrics = tmp_path / "metrics.json"
        assert main(self.GRID + [
            "--jobs", "2", "--cache-dir", str(cache_dir),
            "--resume", str(manifest), "--worker-faults", str(plan_path),
            "--output", str(resumed_out), "--metrics-out", str(metrics),
        ]) == 0
        assert resumed_out.read_bytes() == serial_out.read_bytes()
        snapshot = json.loads(metrics.read_text())
        assert snapshot["sweep"]["jobs"]["resumed"] >= 1
