"""Determinism regression: same config + seed => byte-identical results.

This is the invariant the exec-layer disk cache (PR 2) silently depends
on: a cached result is served verbatim for a matching (config, workload,
scale, seed) key, so two live runs of that key must produce the same
bytes.  These tests dual-run fig14-style simulations (baseline and full
HDPAT on the 7x7 wafer) and compare canonical sha256 digests.
"""

import pytest

from repro.analysis.sanitizers import check_determinism, result_digest
from repro.config.hdpat import HDPATConfig
from repro.config.presets import wafer_7x7_config
from repro.system.runner import run_benchmark

SCALE = 0.02
SEED = 42


def digest_of_run(config, workload, seed=SEED):
    return result_digest(
        run_benchmark(config, workload, scale=SCALE, seed=seed)
    )


class TestFig14StyleDeterminism:
    """Two full runs per scheme, asserted byte-identical by digest."""

    def test_baseline_scheme_dual_run(self):
        config = wafer_7x7_config()
        assert digest_of_run(config, "fir") == digest_of_run(config, "fir")

    def test_hdpat_scheme_dual_run(self):
        config = wafer_7x7_config().with_hdpat(HDPATConfig.full())
        assert digest_of_run(config, "aes") == digest_of_run(config, "aes")

    def test_check_determinism_helper_on_fig14_config(self):
        config = wafer_7x7_config().with_hdpat(HDPATConfig.full())
        digest = check_determinism(config, "fir", scale=SCALE, seed=SEED)
        # And the helper's digest matches an independent run's digest:
        # nothing about dual-running perturbs the result.
        assert digest == digest_of_run(
            config.with_hdpat(HDPATConfig.full()), "fir"
        )

    def test_different_seeds_produce_different_digests(self):
        # Guards against a digest that ignores the payload (vacuously
        # equal): changing the seed must change the bytes.  spmv's gather
        # positions are seed-drawn (fir's regular sweep is seed-invariant
        # by design, so it cannot serve as this control).
        config = wafer_7x7_config()
        assert digest_of_run(config, "spmv", seed=1) != digest_of_run(
            config, "spmv", seed=2
        )

    @pytest.mark.parametrize("workload", ["spmv", "mt"])
    def test_irregular_workloads_dual_run(self, workload):
        # The pointer-chasing / scatter workloads exercise the widest
        # random-number and set-like machinery; they must digest equal too.
        config = wafer_7x7_config().with_hdpat(HDPATConfig.full())
        assert digest_of_run(config, workload) == digest_of_run(
            config, workload
        )
