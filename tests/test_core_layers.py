"""Tests for concentric layers and clustering/rotation (hypothesis-backed)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import NUM_CLUSTERS, ClusterMap
from repro.core.layers import ConcentricLayout
from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology


@pytest.fixture
def layout_7x7():
    return ConcentricLayout(MeshTopology(7, 7), num_layers=2)


class TestConcentricLayout:
    def test_default_layers_are_rings_1_and_2(self, layout_7x7):
        assert layout_7x7.caching_rings == [1, 2]
        assert layout_7x7.caching_gpm_count() == 24

    def test_too_many_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            ConcentricLayout(MeshTopology(5, 5), num_layers=3)

    def test_zero_layers_allowed(self):
        layout = ConcentricLayout(MeshTopology(7, 7), num_layers=0)
        assert layout.caching_rings == []
        assert layout.caching_gpm_count() == 0

    def test_is_caching_gpm(self, layout_7x7):
        assert layout_7x7.is_caching_gpm((4, 4))  # ring 1
        assert layout_7x7.is_caching_gpm((1, 1))  # ring 2
        assert not layout_7x7.is_caching_gpm((0, 0))  # ring 3 (border)

    def test_nearest_member_is_closest(self, layout_7x7):
        topology = layout_7x7.topology
        for tile in topology.gpm_tiles:
            nearest = layout_7x7.nearest_member(1, tile.coordinate)
            best = min(
                topology.manhattan(tile.coordinate, m.coordinate)
                for m in layout_7x7.members(1)
            )
            assert (
                topology.manhattan(tile.coordinate, nearest.coordinate) == best
            )

    def test_nearest_member_exclude(self, layout_7x7):
        member = layout_7x7.members(1)[0]
        nearest = layout_7x7.nearest_member(
            1, member.coordinate, exclude=member.coordinate
        )
        assert nearest.coordinate != member.coordinate

    def test_probe_rings_for_outer_gpm(self, layout_7x7):
        assert layout_7x7.probe_rings_for((0, 0)) == [1, 2]

    def test_probe_rings_for_inner_gpm(self, layout_7x7):
        assert layout_7x7.probe_rings_for((4, 4)) == [1]

    def test_probe_rings_for_middle_gpm(self, layout_7x7):
        assert layout_7x7.probe_rings_for((1, 3)) == [1, 2]

    def test_ring_of(self, layout_7x7):
        assert layout_7x7.ring_of((3, 3)) == 0
        assert layout_7x7.ring_of((6, 6)) == 3


class TestClusterMap:
    def _map(self, ring=2, layer_index=0, rotate=True):
        topology = MeshTopology(7, 7)
        return ClusterMap(topology.ring_members(ring), layer_index, rotate)

    def test_single_holder_per_vpn(self):
        cluster_map = self._map()
        for vpn in range(1000):
            holders = [
                tile
                for tile in cluster_map.members
                if cluster_map.holder_of(vpn) is tile
            ]
            assert len(holders) == 1

    def test_eq1_cluster_assignment(self):
        cluster_map = self._map()
        for vpn in range(100):
            assert cluster_map.cluster_of(vpn) == vpn % NUM_CLUSTERS

    def test_holders_balanced_across_members(self):
        cluster_map = self._map()
        counts = {tile.tile_id: 0 for tile in cluster_map.members}
        for vpn in range(16 * 100):
            counts[cluster_map.holder_of(vpn).tile_id] += 1
        assert max(counts.values()) == min(counts.values()) == 100

    def test_rotation_halves_the_ring(self):
        unrotated = self._map(layer_index=0)
        rotated = self._map(layer_index=1)
        for vpn in range(64):
            delta = (
                rotated.position_of(vpn) - unrotated.position_of(vpn)
            ) % unrotated.num_members
            assert delta == unrotated.num_members // 2

    def test_rotation_disabled(self):
        base = self._map(layer_index=0)
        unrotated_layer1 = self._map(layer_index=1, rotate=False)
        for vpn in range(64):
            assert base.position_of(vpn) == unrotated_layer1.position_of(vpn)

    def test_cluster_forms_contiguous_arc(self):
        cluster_map = self._map(ring=1)
        positions = sorted(
            cluster_map.position_of(vpn)
            for vpn in range(0, 400, 4)  # cluster 0 VPNs
        )
        unique = sorted(set(positions))
        assert unique == list(range(unique[0], unique[0] + len(unique)))

    def test_indivisible_ring_rejected(self):
        topology = MeshTopology(7, 7)
        members = topology.ring_members(1)[:7]  # 7 not divisible by 4
        with pytest.raises(ValueError):
            ClusterMap(members, 0)

    def test_vpns_held_by(self):
        cluster_map = self._map(ring=1)
        tile = cluster_map.members[0]
        held = cluster_map.vpns_held_by(tile, (0, 128))
        assert held
        for vpn in held:
            assert cluster_map.holder_of(vpn) is tile

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_rotated_layers_place_holders_apart(self, vpn):
        """Rotation guarantee: the ring-1 and ring-2 holders of any VPN sit
        in different half-planes, so every requester has a nearby layer."""
        topology = MeshTopology(7, 7)
        inner = ClusterMap(topology.ring_members(1), layer_index=0)
        outer = ClusterMap(topology.ring_members(2), layer_index=1)
        inner_holder = inner.holder_of(vpn).coordinate
        outer_holder = outer.holder_of(vpn).coordinate
        distance = topology.manhattan(inner_holder, outer_holder)
        assert distance >= 2  # never co-located / adjacent corner-stacked

    @given(st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=200, deadline=None)
    def test_holder_deterministic(self, vpn):
        topology = MeshTopology(7, 7)
        first = ClusterMap(topology.ring_members(2), 0).holder_of(vpn)
        second = ClusterMap(topology.ring_members(2), 0).holder_of(vpn)
        assert first.tile_id == second.tile_id
