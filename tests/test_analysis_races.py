"""Race-detector tests: the static pass and the dynamic sanitizer must
both catch the seeded racy fixture, stay silent on clean code, honour
benign justifications, and leave the determinism contract untouched."""

import os
import textwrap

import pytest

from repro.analysis.lint import Baseline
from repro.analysis.races import (
    DEFAULT_RACE_PATHS,
    RACE_RW,
    RACE_WW,
    analyze_paths,
    analyze_source,
)
from repro.analysis.sanitizers import (
    BENIGN_RACE_FIELDS,
    RaceSanitizer,
    result_digest,
)
from repro.config.system import SystemConfig
from repro.errors import OrderRaceError, SanitizerError, SimulationError
from repro.obs import Observability
from repro.sim.component import Component
from repro.sim.engine import Simulator
from repro.system.runner import run_benchmark
from tests.fixtures.racy_ticker import RacyCounter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE = os.path.join(REPO_ROOT, "tests", "fixtures", "racy_ticker.py")
RACES_BASELINE = os.path.join(REPO_ROOT, "analysis-races-baseline.txt")


class Probe(Component):
    """Unslotted component so tests can attach ad-hoc fields."""


def race_findings(source, path="src/repro/sim/toy.py"):
    return analyze_source(textwrap.dedent(source), path=path)


# ----------------------------------------------------------------------
# Static half
# ----------------------------------------------------------------------
class TestStaticPass:
    def test_fixture_is_flagged_write_write(self):
        with open(FIXTURE, "r", encoding="utf-8") as handle:
            findings = analyze_source(handle.read(), path=FIXTURE)
        fields = {f.message.split()[0] for f in findings}
        assert all(f.rule_id == RACE_WW for f in findings)
        assert "RacyCounter.value" in fields
        assert "RacyCounter.last_writer" in fields
        # The value conflict is only visible through one level of
        # inlining (tick_bump -> _bump_value).
        value = next(f for f in findings if "value" in f.message)
        assert "tick_bump" in value.message and "tick_double" in value.message

    def test_read_write_conflict_is_race002(self):
        findings = race_findings("""
            class Probe:
                def start(self):
                    self.sim.schedule(1, self.writer)
                    self.sim.schedule(1, self.reader)
                def writer(self):
                    self.level = 1
                def reader(self):
                    self.seen = self.level
            """)
        by_rule = {f.rule_id for f in findings}
        assert RACE_RW in by_rule
        rw = next(f for f in findings if f.rule_id == RACE_RW)
        assert "Probe.level" in rw.message

    def test_lambda_and_local_def_registrations_resolve(self):
        findings = race_findings("""
            class T:
                def start(self):
                    self.sim.schedule(1, lambda: self._apply(1))
                    def _send():
                        self.acc = self.acc + 1
                    self.sim.schedule(2, _send)
                def _apply(self, v):
                    self.acc += v
            """)
        assert [f.rule_id for f in findings] == [RACE_WW]
        assert "start.<lambda" in findings[0].message
        assert "start._send" in findings[0].message

    def test_single_registered_callback_is_clean(self):
        findings = race_findings("""
            class Solo:
                def start(self):
                    self.sim.schedule(1, self.tick)
                def tick(self):
                    self.count += 1
                    self.sim.schedule(1, self.tick)
            """)
        assert findings == []

    def test_inlining_stops_at_one_level(self):
        # Two levels of indirection are out of the documented conflict
        # model: the pass must stay silent rather than guess.
        findings = race_findings("""
            class Deep:
                def start(self):
                    self.sim.schedule(1, self.tick_a)
                    self.sim.schedule(1, self.tick_b)
                def tick_a(self):
                    self._hop()
                def tick_b(self):
                    self._hop()
                def _hop(self):
                    self._land()
                def _land(self):
                    self.field = 1
            """)
        assert findings == []

    def test_pragma_suppresses_on_multiline_statement(self):
        source = """
            class Pair:
                def start(self):
                    self.sim.schedule(1, self.tick_a)
                    self.sim.schedule(1, self.tick_b)
                def tick_a(self):
                    self.total = (
                        self.total  # lint: disable=RACE001
                        + 1
                    )
                def tick_b(self):
                    self.total = 0
            """
        assert race_findings(source) == []
        assert race_findings(source.replace(
            "# lint: disable=RACE001", "")) != []

    def test_allow_race_tag_suppresses(self):
        findings = race_findings("""
            class Pair:
                def start(self):
                    self.sim.schedule(1, self.tick_a)
                    self.sim.schedule(1, self.tick_b)
                def tick_a(self):
                    self.total = 1  # lint: allow-race
                def tick_b(self):
                    self.total = 0
            """)
        assert findings == []

    def test_baseline_suppresses_with_inline_justification(self, tmp_path):
        baseline_file = tmp_path / "races.txt"
        baseline_file.write_text(
            "# reviewed races\n"
            f"{RACE_WW}:{FIXTURE}:*  # seeded fixture, racy on purpose\n"
        )
        findings, baselined = analyze_paths(
            [FIXTURE], baseline=Baseline.load(str(baseline_file))
        )
        assert findings == []
        assert baselined == 2

    def test_shipped_simulation_trees_clean_with_committed_baseline(self):
        paths = [os.path.join(REPO_ROOT, p) for p in DEFAULT_RACE_PATHS]
        findings, _ = analyze_paths(
            paths, baseline=Baseline.load(RACES_BASELINE)
        )
        assert findings == [], [f.key() for f in findings]


# ----------------------------------------------------------------------
# Dynamic half
# ----------------------------------------------------------------------
class TestDynamicSanitizer:
    def test_fixture_raises_order_race_error(self):
        sim = Simulator(sanitize="races")
        RacyCounter(sim).start()
        with pytest.raises(OrderRaceError, match="RacyCounter"):
            sim.run()
        # Typed and catchable alongside the other sanitizer errors.
        assert issubclass(OrderRaceError, SanitizerError)

    def test_error_names_both_events_and_field(self):
        sim = Simulator(sanitize="races")
        RacyCounter(sim).start()
        with pytest.raises(OrderRaceError) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "tick_double" in message and "tick_bump" in message
        assert "insertion seq" in message

    def test_report_mode_collects_instead_of_raising(self):
        sim = Simulator(sanitize="races:report")
        RacyCounter(sim).start()
        sim.run()
        races = sim.sanitizer.report()["races"]
        assert races["report_mode"] is True
        assert races["conflicts"] > 0
        kinds = {f["kind"] for f in races["findings"]}
        assert kinds == {"write-write"}
        fields = {f["field"] for f in races["findings"]}
        assert fields == {"value", "last_writer"}

    def test_hooks_restored_after_raise_and_after_clean_run(self):
        sim = Simulator(sanitize="races")
        RacyCounter(sim).start()
        with pytest.raises(OrderRaceError):
            sim.run()
        assert "__getattribute__" not in vars(Component)
        assert "__setattr__" not in vars(Component)

        clean = Simulator(sanitize="races")
        clean.schedule(1, lambda: None)
        clean.run()
        assert "__getattribute__" not in vars(Component)

    def test_benign_registry_suppresses_justified_fields(self):
        added = {
            ("RacyCounter", "value"): "test: justified",
            ("RacyCounter", "last_writer"): "test: justified",
        }
        BENIGN_RACE_FIELDS.update(added)
        try:
            sim = Simulator(sanitize="races")
            RacyCounter(sim).start()
            sim.run()
            races = sim.sanitizer.report()["races"]
            assert races["findings"] == []
            assert races["benign_suppressed"] > 0
        finally:
            for key in added:
                del BENIGN_RACE_FIELDS[key]

    def test_observer_readers_do_not_count_as_race(self):
        # A read-only observer (PeriodicSampler._tick is registered as
        # such) sampling a field another event writes is not a race:
        # observer output never reaches digests.
        sim = Simulator(sanitize="races")
        target = Probe(sim, "observed")
        target.depth = 0

        def writer():
            target.depth = sim.now

        def sampler():
            _ = target.depth

        sampler.__qualname__ = "PeriodicSampler._tick"
        sim.schedule(1, writer)
        sim.schedule(1, sampler)
        sim.run()
        races = sim.sanitizer.report()["races"]
        assert races["findings"] == []
        assert races["benign_suppressed"] >= 1

    def test_double_arm_rejected(self):
        first = RaceSanitizer()
        first.arm()
        try:
            with pytest.raises(SimulationError):
                RaceSanitizer().arm()
        finally:
            first.disarm()

    def test_plain_sanitize_mode_has_no_race_sanitizer(self):
        sim = Simulator(sanitize=True)
        assert sim.sanitizer.races is None

    def test_unknown_sanitize_mode_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(sanitize="rces")


# ----------------------------------------------------------------------
# Sanitizer x calendar-queue interaction (batched dispatch)
# ----------------------------------------------------------------------
class TestCalendarQueueInteraction:
    def test_overflow_tier_migration_keeps_detection(self):
        # Beyond the 1024-slot ring both events land in the heap
        # overflow tier and migrate into the ring later; they must still
        # be recognised as same-cycle once dispatched.
        sim = Simulator(sanitize="races")
        counter = RacyCounter(sim)
        sim.schedule(5000, counter.tick_double)
        sim.schedule(5000, counter.tick_bump)
        with pytest.raises(OrderRaceError, match="cycle 5000"):
            sim.run()

    def test_mid_batch_self_rescheduling_ticker_is_clean(self):
        # A ticker that re-schedules itself from inside the batch is the
        # calendar queue's trickiest path (same-slot insertion during
        # drain); one writer per cycle is not a race.
        sim = Simulator(sanitize="races")
        ticker = Probe(sim, "ticker")
        ticker.beats = 0

        def tick():
            ticker.beats += 1
            if ticker.beats < 50:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        assert ticker.beats == 50
        assert sim.sanitizer.report()["races"]["findings"] == []

    def test_racing_pair_of_self_rescheduling_tickers_caught(self):
        sim = Simulator(sanitize="races")
        counter = RacyCounter(sim)

        def tick_a():
            counter.tick_double()
            sim.schedule(1, tick_a)

        def tick_b():
            counter.tick_bump()
            sim.schedule(1, tick_b)

        sim.schedule(1, tick_a)
        sim.schedule(1, tick_b)
        with pytest.raises(OrderRaceError, match="value"):
            sim.run()

    def test_event_order_sanitizer_still_armed_alongside_races(self):
        from repro.errors import EventOrderError

        sim = Simulator(sanitize="races")
        sim.schedule(10, lambda: None)
        sim.step()
        with pytest.raises(EventOrderError):
            sim.schedule_at(5, lambda: None)
        sim.sanitizer.races.disarm()

    def test_step_mode_arms_and_disarms(self):
        # The same-cycle analysis closes a cycle when time advances past
        # it; in step mode the last cycle is flushed by the drain call
        # (the step() that returns None), which must also restore hooks.
        sim = Simulator(sanitize="races")
        RacyCounter(sim).start(cycles=1)
        with pytest.raises(OrderRaceError):
            while sim.step() is not None:
                pass
        assert "__getattribute__" not in vars(Component)


# ----------------------------------------------------------------------
# End-to-end: clean system runs, digests, phase attribution
# ----------------------------------------------------------------------
class TestEndToEnd:
    CONFIG = dict(scale=0.02, seed=7)

    def test_small_preset_clean_and_digest_unchanged(self):
        config = SystemConfig(mesh_width=3, mesh_height=3)
        plain = run_benchmark(config, "fir", **self.CONFIG)
        raced = run_benchmark(config, "fir", sanitize="races", **self.CONFIG)
        assert result_digest(plain.to_dict()) == result_digest(raced.to_dict())
        races = raced.extras["sanitizers"]["races"]
        assert races["findings"] == []
        assert races["cycles_checked"] > 0
        assert races["accesses_recorded"] > 0

    def test_phase_row_attributes_race_overhead(self):
        obs = Observability(phases=True)
        config = SystemConfig(mesh_width=3, mesh_height=3)
        result = run_benchmark(
            config, "fir", obs=obs, sanitize="races", **self.CONFIG
        )
        snapshot = result.extras["phase_profile"]
        assert "sanitize.races" in snapshot
        assert snapshot["sanitize.races"] >= 0
        report_rows = {row["phase"] for row in result.extras["phase_report"]}
        assert "sanitize.races" in report_rows


# ----------------------------------------------------------------------
# CLI: the races verb and the sanitize/run --races plumbing
# ----------------------------------------------------------------------
class TestCli:
    def _run(self, *args):
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )

    def test_races_verb_flags_fixture(self):
        proc = self._run("races", FIXTURE)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "RACE001" in proc.stdout

    def test_races_update_baseline_then_clean(self, tmp_path):
        baseline = tmp_path / "races-baseline.txt"
        write = self._run("races", FIXTURE,
                          "--update-baseline", str(baseline))
        assert write.returncode == 0, write.stdout + write.stderr
        rerun = self._run("races", FIXTURE, "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout

    def test_races_default_paths_clean_with_committed_baseline(self):
        proc = self._run("races", "--baseline", "analysis-races-baseline.txt",
                         "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_run_cli_accepts_and_validates_sanitize_modes(self, capsys):
        from repro.system.cli import main as run_main

        assert run_main(["fir", "--scale", "0.02", "--mesh", "3x3",
                         "--sanitize", "races"]) == 0
        out = capsys.readouterr().out
        assert "sanitizers: clean" in out
        assert "races:" in out
        assert run_main(["fir", "--sanitize", "bogus"]) == 2

    def test_sanitize_verb_report_requires_races(self, capsys):
        from repro.analysis.cli import main as analysis_main

        assert analysis_main(["sanitize", "--report"]) == 2
