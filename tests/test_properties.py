"""Cross-module hypothesis property suites.

These pin the algebraic invariants the simulator's correctness rests on:
event ordering, allocator coverage, redirection-table LRU behaviour,
cluster-map coverage at every mesh size, and capacity-scaling monotonicity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import wafer_7x7_config
from repro.config.scaling import capacity_scaled
from repro.core.clustering import ClusterMap
from repro.iommu.redirection import RedirectionTable
from repro.mem.address import AddressSpace
from repro.mem.allocator import PageAllocator
from repro.noc.topology import MeshTopology
from repro.sim.engine import Simulator


class TestEngineProperties:
    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_final_cycle_is_max_delay(self, delays):
        sim = Simulator()
        for delay in delays:
            sim.schedule(delay, lambda: None)
        assert sim.run() == max(delays)


class TestAllocatorProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.integers(1, 500), min_size=1, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_page_owned_and_owners_in_range(self, num_gpms, sizes):
        allocator = PageAllocator(AddressSpace(), num_gpms)
        for size in sizes:
            allocation = allocator.allocate_pages(size)
            owners = [allocation.owner_of[v] for v in allocation.vpns()]
            assert len(owners) == size
            assert all(0 <= owner < num_gpms for owner in owners)
            # Contiguous runs: owner ids never decrease along the range.
            assert owners == sorted(owners)

    @given(st.integers(1, 32), st.integers(1, 400))
    @settings(max_examples=50, deadline=None)
    def test_ownership_balanced_within_one_page(self, num_gpms, pages):
        allocator = PageAllocator(AddressSpace(), num_gpms)
        allocation = allocator.allocate_pages(pages)
        counts = {}
        for owner in allocation.owner_of.values():
            counts[owner] = counts.get(owner, 0) + 1
        if counts:
            assert max(counts.values()) - min(counts.values()) <= 1

    @given(st.integers(2, 16))
    @settings(max_examples=20, deadline=None)
    def test_materialized_frames_unique_per_gpm(self, num_gpms):
        allocator = PageAllocator(AddressSpace(), num_gpms)
        entries = []
        for _ in range(3):
            entries += allocator.materialize(allocator.allocate_pages(40))
        seen = set()
        for entry in entries:
            key = (entry.owner_gpm, entry.pfn)
            assert key not in seen
            seen.add(key)


class TestRedirectionProperties:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 7)),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_size_never_exceeds_capacity(self, updates):
        table = RedirectionTable(capacity=16)
        for vpn, gpm in updates:
            table.update(vpn, gpm)
        assert len(table) <= 16

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_last_update_wins(self, vpns):
        table = RedirectionTable(capacity=64)
        last = {}
        for index, vpn in enumerate(vpns):
            table.update(vpn, index % 48)
            last[vpn] = index % 48
        for vpn, expected in last.items():
            if vpn in table:
                assert table.lookup(vpn) == expected


class TestClusterMapProperties:
    @given(
        st.sampled_from([(5, 5), (7, 7), (9, 9), (7, 12)]),
        st.integers(1, 2),
        st.integers(0, 2**32),
    )
    @settings(max_examples=100, deadline=None)
    def test_exactly_one_holder_on_any_mesh(self, dims, ring, vpn):
        topology = MeshTopology(*dims)
        if ring not in topology.complete_rings():
            return
        cluster_map = ClusterMap(topology.ring_members(ring), layer_index=0)
        holder = cluster_map.holder_of(vpn)
        assert holder in cluster_map.members
        # Deterministic and stable:
        assert cluster_map.holder_of(vpn) is holder

    @given(st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_positions_cover_whole_ring(self, ring):
        topology = MeshTopology(9, 9)
        cluster_map = ClusterMap(topology.ring_members(ring), layer_index=0)
        positions = {
            cluster_map.position_of(vpn) for vpn in range(8 * ring * 16)
        }
        assert positions == set(range(8 * ring))


class TestCapacityScalingProperties:
    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_scaled_capacities_never_exceed_full(self, scale):
        full = wafer_7x7_config()
        scaled = capacity_scaled(full, scale)
        assert scaled.gpm.l2_tlb.capacity <= full.gpm.l2_tlb.capacity
        assert scaled.gpm.gmmu_cache.capacity <= full.gpm.gmmu_cache.capacity
        assert scaled.iommu.redirection_entries <= full.iommu.redirection_entries
        assert scaled.gpm.l2_cache.size_bytes <= full.gpm.l2_cache.size_bytes

    @given(st.floats(min_value=0.01, max_value=0.99),
           st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_scaling_is_monotone(self, a, b):
        small, large = sorted((a, b))
        config_small = capacity_scaled(wafer_7x7_config(), small)
        config_large = capacity_scaled(wafer_7x7_config(), large)
        assert (
            config_small.gpm.l2_tlb.capacity
            <= config_large.gpm.l2_tlb.capacity
        )
        assert (
            config_small.iommu.redirection_entries
            <= config_large.iommu.redirection_entries
        )
