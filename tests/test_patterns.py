"""Property tests for the access-pattern library."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address import AddressSpace
from repro.mem.allocator import PageAllocator
from repro.workloads.base import BuildContext
from repro.workloads.patterns import (
    aligned_stream,
    butterfly_pairs,
    cyclic_stream,
    interleave,
    shared_hot_stream,
    strided_walk,
    zipf_gather,
)


def _context(num_gpms=8, footprint_mb=4, seed=1):
    allocator = PageAllocator(AddressSpace(), num_gpms)
    return BuildContext(
        allocator=allocator,
        rng=random.Random(seed),
        num_gpms=num_gpms,
        accesses_per_gpm=200,
        footprint_bytes=footprint_mb * 1024 * 1024,
        page_size=4096,
    )


def _in_bounds(ctx, allocation, addrs):
    base = allocation.base_vpn * ctx.page_size
    end = allocation.end_vpn * ctx.page_size
    return all(base <= a < end for a in addrs)


class TestBounds:
    @pytest.mark.parametrize("gpm", [0, 3, 7])
    def test_aligned_stream_in_bounds(self, gpm):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = aligned_stream(ctx, allocation, gpm, 100, step=256, passes=2)
        assert len(addrs) == 100
        assert _in_bounds(ctx, allocation, addrs)

    @pytest.mark.parametrize("gpm", [0, 5])
    def test_cyclic_stream_in_bounds(self, gpm):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = cyclic_stream(ctx, allocation, gpm, 150)
        assert len(addrs) == 150
        assert _in_bounds(ctx, allocation, addrs)

    def test_butterfly_in_bounds(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = butterfly_pairs(ctx, allocation, 2, 120)
        assert addrs
        assert _in_bounds(ctx, allocation, addrs)

    def test_zipf_in_bounds(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(0.5)
        addrs = zipf_gather(ctx, allocation, 300)
        assert len(addrs) == 300
        assert _in_bounds(ctx, allocation, addrs)

    def test_strided_walk_in_bounds(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = strided_walk(ctx, allocation, 1, 100, stride=70_000, passes=2)
        assert len(addrs) == 100
        assert _in_bounds(ctx, allocation, addrs)

    def test_shared_hot_stream_stays_in_region(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = shared_hot_stream(ctx, allocation, 100, region_bytes=2048)
        base = allocation.base_vpn * ctx.page_size
        assert all(base <= a < base + 2048 for a in addrs)


class TestSemantics:
    def test_aligned_stream_is_owner_local(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        space = ctx.allocator.address_space
        for gpm in range(ctx.num_gpms):
            addrs = aligned_stream(ctx, allocation, gpm, 50, step=4096)
            owners = {ctx.allocator.owner_of(space.vpn_of(a)) for a in addrs}
            assert owners == {gpm}

    def test_cyclic_streams_disjoint_across_gpms(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        first = set(cyclic_stream(ctx, allocation, 0, 64, step=4096))
        second = set(cyclic_stream(ctx, allocation, 1, 64, step=4096))
        assert not first & second

    def test_cyclic_stream_sequential_within_chunk(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = cyclic_stream(ctx, allocation, 0, 64, step=4096,
                              chunk_bytes=4 * 4096)
        # First four pages are the chunk, sequential.
        deltas = [b - a for a, b in zip(addrs[:3], addrs[1:4])]
        assert deltas == [4096, 4096, 4096]

    def test_butterfly_emits_pairs(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = butterfly_pairs(ctx, allocation, 0, 40, element_bytes=256)
        assert len(addrs) % 2 == 0

    def test_zipf_is_deterministic_per_rng(self):
        ctx_a = _context(seed=5)
        ctx_b = _context(seed=5)
        alloc_a = ctx_a.alloc_fraction(1.0)
        alloc_b = ctx_b.alloc_fraction(1.0)
        assert zipf_gather(ctx_a, alloc_a, 50) == zipf_gather(ctx_b, alloc_b, 50)

    def test_strided_walk_passes_repeat_pages(self):
        ctx = _context()
        allocation = ctx.alloc_fraction(1.0)
        addrs = strided_walk(ctx, allocation, 0, 100, stride=65_536, passes=2)
        first_pass = addrs[:50]
        second_pass = addrs[50:]
        assert first_pass == second_pass

    def test_interleave_round_robin(self):
        assert interleave([1, 3, 5], [2, 4]) == [1, 2, 3, 4, 5]

    def test_interleave_empty(self):
        assert interleave([], []) == []


class TestPartitionBounds:
    def test_bounds_cover_buffer_exactly(self):
        ctx = _context(num_gpms=5)
        allocation = ctx.alloc_fraction(1.0)
        covered = 0
        for gpm in range(5):
            _start, length = ctx.partition_bounds(allocation, gpm)
            covered += length
        assert covered == allocation.num_pages * ctx.page_size

    def test_bounds_match_allocator_ownership(self):
        ctx = _context(num_gpms=7)
        allocation = ctx.alloc_fraction(1.0)
        space = ctx.allocator.address_space
        for gpm in range(7):
            start, length = ctx.partition_bounds(allocation, gpm)
            first_vpn = space.vpn_of(ctx.addr(allocation, start))
            last_vpn = space.vpn_of(ctx.addr(allocation, start + length - 1))
            assert allocation.owner_of[first_vpn] == gpm
            assert allocation.owner_of[last_vpn] == gpm

    @given(st.integers(2, 16), st.integers(3, 300))
    @settings(max_examples=50, deadline=None)
    def test_bounds_property(self, num_gpms, pages):
        ctx = _context(num_gpms=num_gpms)
        allocation = ctx.allocator.allocate_pages(pages)
        total = 0
        previous_end = None
        for gpm in range(num_gpms):
            start, length = ctx.partition_bounds(allocation, gpm)
            if pages >= num_gpms:
                if previous_end is not None:
                    assert start == previous_end
                previous_end = start + length
            total += length
        if pages >= num_gpms:
            assert total == pages * ctx.page_size
