"""Calendar-queue scheduler equivalence + hot-path timing bugfix tests.

The calendar queue (rotating per-cycle FIFO slots over a heap overflow
tier) must be observationally identical to the classic single binary
heap keyed on ``(time, sequence)``.  The property suite drives both
through the same randomly generated event programs — same-cycle ties,
far-future events past the calendar window, ``max_cycles`` truncation,
and mid-run ``schedule_at`` calls from inside callbacks — and demands
identical firing logs.

The regression half pins the timing-math bugfixes that rode along with
the scheduler change: fractional-bandwidth serialisation ceiling,
``schedule_at`` validating before the sanitizer hook mutates state, and
``run_until`` quiescing sanitizers on a genuine drain.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EventOrderError, SimulationError
from repro.noc.link import Link
from repro.sim.engine import SLOT_COUNT, Simulator
from repro.units import serialization_cycles


# ----------------------------------------------------------------------
# Reference model: the classic single-heap scheduler
# ----------------------------------------------------------------------
class ReferenceHeapSimulator:
    """The pre-calendar design: one heap, ``(time, sequence)`` order."""

    def __init__(self, max_cycles=None):
        self.now = 0
        self.max_cycles = max_cycles
        self.events_processed = 0
        self.dropped_events = 0
        self._queue = []
        self._sequence = 0

    def schedule(self, delay, callback):
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time, callback):
        if time < self.now:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(self._queue, (int(time), self._sequence, callback))
        self._sequence += 1

    def run(self):
        while self._queue:
            time = self._queue[0][0]
            if self.max_cycles is not None and time > self.max_cycles:
                self.dropped_events = len(self._queue)
                self._queue.clear()
                break
            _, _, callback = heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            callback()
        return self.now


def _run_program(sim, program):
    """Feed a generated event program into ``sim``; return the firing log.

    Each program entry is ``(delay, children)`` where children are
    ``(delay, grandchildren)`` scheduled from inside the parent callback
    via ``schedule_at`` — exercising mid-run scheduling into both the
    calendar window and the overflow tier.
    """
    log = []

    def fire(tag, children):
        def _callback():
            log.append((sim.now, tag))
            for index, (delay, grandchildren) in enumerate(children):
                sim.schedule_at(sim.now + delay, fire((tag, index), grandchildren))
        return _callback

    for index, (delay, children) in enumerate(program):
        sim.schedule(delay, fire(index, children))
    final = sim.run()
    return log, final


# Delays mixing same-cycle ties, in-window offsets, the exact window
# boundary, and far-future overflow (> SLOT_COUNT cycles ahead).
_DELAYS = st.one_of(
    st.integers(0, 3),
    st.integers(0, 60),
    st.integers(SLOT_COUNT - 2, SLOT_COUNT + 2),
    st.integers(SLOT_COUNT, 5 * SLOT_COUNT),
)
_GRANDCHILDREN = st.lists(st.tuples(_DELAYS, st.just(())), max_size=2)
_CHILDREN = st.lists(st.tuples(_DELAYS, _GRANDCHILDREN), max_size=2)
_PROGRAM = st.lists(st.tuples(_DELAYS, _CHILDREN), min_size=1, max_size=25)


class TestCalendarMatchesReferenceHeap:
    @given(_PROGRAM)
    @settings(max_examples=60, deadline=None)
    def test_same_firing_order_and_final_cycle(self, program):
        ref_log, ref_final = _run_program(ReferenceHeapSimulator(), program)
        cal_log, cal_final = _run_program(Simulator(), program)
        assert cal_log == ref_log
        assert cal_final == ref_final

    @given(_PROGRAM)
    @settings(max_examples=60, deadline=None)
    def test_event_counts_match(self, program):
        reference = ReferenceHeapSimulator()
        simulator = Simulator()
        _run_program(reference, program)
        _run_program(simulator, program)
        assert simulator.events_processed == reference.events_processed
        assert simulator.pending_events == 0

    @given(_PROGRAM, st.integers(0, 3 * SLOT_COUNT))
    @settings(max_examples=60, deadline=None)
    def test_max_cycles_truncation_matches(self, program, max_cycles):
        reference = ReferenceHeapSimulator(max_cycles=max_cycles)
        simulator = Simulator(max_cycles=max_cycles)
        ref_log, _ = _run_program(reference, program)
        cal_log, _ = _run_program(simulator, program)
        assert cal_log == ref_log
        assert simulator.events_processed == reference.events_processed
        assert simulator.dropped_events == reference.dropped_events
        assert simulator.pending_events == 0

    def test_overflow_events_interleave_with_window_events(self):
        """A far-future event and a later direct schedule into the same
        cycle must fire in schedule order (overflow drains first)."""
        sim = Simulator()
        fired = []
        target = 2 * SLOT_COUNT + 5
        sim.schedule_at(target, lambda: fired.append("overflow-first"))
        # Step the window forward, then schedule the same cycle directly.
        sim.schedule(1, lambda: sim.schedule_at(target, lambda: fired.append("direct-second")))
        sim.run()
        assert fired == ["overflow-first", "direct-second"]


# ----------------------------------------------------------------------
# Bugfix regressions
# ----------------------------------------------------------------------
class TestFractionalBandwidthSerialization:
    def test_sub_byte_per_cycle_bandwidth_ceils_up(self):
        # A degraded divisor below 1 B/cycle must slow serialisation;
        # truncating it to int would floor back to the healthy rate.
        assert serialization_cycles(8, 0.5) == 16
        assert serialization_cycles(1, 0.1) == 10

    def test_fractional_bandwidth_above_one_still_ceils(self):
        assert serialization_cycles(8, 0.9) == 9
        assert serialization_cycles(10, 3.0) == 4

    def test_degraded_one_byte_link_queues_slower(self):
        healthy = Link((0, 0), (1, 0), latency=4, bytes_per_cycle=1.0)
        degraded = Link((0, 0), (1, 0), latency=4, bytes_per_cycle=1.0)
        degraded.bandwidth_factor = 1 / 16
        healthy.transmit(0, 32, False)
        degraded.transmit(0, 32, False)
        assert healthy.last_serialization == 32
        assert degraded.last_serialization == 512
        # The second message queues behind the first: the fail-slow link
        # delivers it measurably later than the healthy one.
        assert degraded.transmit(0, 32, False) > healthy.transmit(0, 32, False)

    def test_bandwidth_factor_change_invalidates_serialization_cache(self):
        link = Link((0, 0), (1, 0), latency=1, bytes_per_cycle=2.0)
        link.transmit(0, 64, False)
        assert link.last_serialization == 32
        link.bandwidth_factor = 0.5
        link.transmit(1000, 64, False)
        assert link.last_serialization == 64
        link.bandwidth_factor = 1.0
        link.transmit(2000, 64, False)
        assert link.last_serialization == 32


class TestScheduleAtValidatesBeforeSanitizerHook:
    def test_rejected_schedule_leaves_sanitizer_state_untouched(self):
        sim = Simulator(sanitize=True)
        sim.schedule(5, lambda: None)
        sim.run()
        checked_before = sim.sanitizer.event_order.schedules_checked
        with pytest.raises(EventOrderError):
            sim.schedule_at(sim.now - 1, lambda: None)
        assert sim.sanitizer.event_order.schedules_checked == checked_before

    def test_unsanitized_past_schedule_still_raises(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(sim.now - 1, lambda: None)


class TestRunUntilQuiesce:
    def test_genuine_drain_runs_quiesce_checks(self):
        sim = Simulator(sanitize=True)
        sim.schedule(3, lambda: None)
        sim.run_until(10)
        assert sim.sanitizer.quiesce_checks_run == 1

    def test_no_quiesce_while_events_remain(self):
        sim = Simulator(sanitize=True)
        sim.schedule(3, lambda: None)
        sim.schedule(50, lambda: None)
        sim.run_until(10)
        assert sim.sanitizer.quiesce_checks_run == 0

    def test_run_matches_run_until_quiesce_behaviour(self):
        sim = Simulator(sanitize=True)
        sim.schedule(3, lambda: None)
        sim.run()
        assert sim.sanitizer.quiesce_checks_run == 1
