"""Tests for fault timelines, mid-run recovery, and the ext_recovery
experiment (repro.faults.timeline / repro.faults.recovery)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizers import result_digest
from repro.config.hdpat import HDPATConfig
from repro.config.presets import wafer_7x7_config
from repro.errors import ConfigurationError
from repro.experiments import ext_recovery
from repro.faults import (
    DegradeLink,
    DrainWarning,
    FaultPlan,
    FaultState,
    FaultTimeline,
    KillGpm,
    RecoverGpm,
    RestoreLink,
    RetryPolicy,
    degradation_plan,
    recovery_scenario,
)
from repro.noc.link import Link
from repro.noc.messages import Message, MessageKind
from repro.noc.network import MeshNetwork
from repro.noc.routing import route_links
from repro.noc.topology import MeshTopology
from repro.system.runner import run_benchmark

SCALE = 0.02


def _scenario(recover=True, num_victims=2):
    """The canonical degrade -> drain -> kill -> restore -> recover
    schedule used by the end-to-end tests; ``recover=False`` is the
    fail-stop control (same seed, same victims, same slow links)."""
    return recovery_scenario(
        7, 7, seed=9, kill_cycle=4000,
        recover_cycle=9000 if recover else None,
        drain_cycle=2000 if recover else None,
        degrade_cycle=1000,
        restore_cycle=8000 if recover else None,
        num_victims=num_victims,
    )


class TestTimelineEvents:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            DegradeLink(5, ((0, 0), (1, 0)), bandwidth_factor=0.0)
        with pytest.raises(ConfigurationError):
            DegradeLink(5, ((0, 0), (1, 0)), bandwidth_factor=1.5)
        with pytest.raises(ConfigurationError):
            DrainWarning(10, (1, 1), deadline=10)  # deadline must follow
        with pytest.raises(ConfigurationError):
            KillGpm(-1, (1, 1))
        with pytest.raises(ConfigurationError):
            KillGpm(2.5, (1, 1))

    def test_links_canonicalized(self):
        assert RestoreLink(1, ((1, 0), (0, 0))).link == ((0, 0), (1, 0))

    def test_same_cycle_events_apply_in_severity_order(self):
        timeline = FaultTimeline(events=(
            RecoverGpm(10, (0, 0)),
            KillGpm(10, (1, 0)),
            RestoreLink(10, ((0, 0), (1, 0))),
            DegradeLink(10, ((2, 0), (3, 0)), 0.5),
            DrainWarning(10, (2, 0), deadline=20),
        ))
        kinds = [type(e) for e in timeline.events]
        assert kinds == [DegradeLink, RestoreLink, DrainWarning,
                         KillGpm, RecoverGpm]

    def test_operand_breaks_ties_within_a_kind(self):
        timeline = FaultTimeline(events=(
            KillGpm(5, (2, 0)), KillGpm(5, (0, 0)), KillGpm(3, (4, 4)),
        ))
        assert [(e.cycle, e.gpm) for e in timeline.events] == [
            (3, (4, 4)), (5, (0, 0)), (5, (2, 0)),
        ]

    def test_json_round_trip_is_canonical(self):
        timeline = _scenario()
        clone = FaultTimeline.from_dict(
            json.loads(json.dumps(timeline.to_dict()))
        )
        assert clone == timeline
        assert clone.describe() == timeline.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultTimeline.from_dict({"events": [{"kind": "melt", "cycle": 1}]})

    def test_empty_timeline_is_no_timeline(self):
        # Satellite: an empty timeline must be indistinguishable from no
        # timeline — same plan value, same describe, same cache key.
        with_empty = FaultPlan(seed=3, timeline=FaultTimeline())
        assert with_empty == FaultPlan(seed=3)
        assert with_empty.timeline is None
        assert "tl-" not in with_empty.describe()

    def test_plan_round_trips_timeline(self):
        plan = FaultPlan(seed=7, timeline=_scenario())
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan
        assert clone.timeline == plan.timeline


class TestRecoveryScenario:
    def test_deterministic(self):
        assert _scenario() == _scenario()

    def test_failstop_control_shares_victims_and_links(self):
        recovered, failstop = _scenario(True), _scenario(False)
        assert (
            {e.gpm for e in recovered.events if isinstance(e, KillGpm)}
            == {e.gpm for e in failstop.events if isinstance(e, KillGpm)}
        )
        assert (
            {e.link for e in recovered.events if isinstance(e, DegradeLink)}
            == {e.link for e in failstop.events if isinstance(e, DegradeLink)}
        )
        assert not any(
            isinstance(e, (RecoverGpm, DrainWarning, RestoreLink))
            for e in failstop.events
        )

    def test_victims_never_cpu(self):
        timeline = recovery_scenario(7, 7, seed=1, kill_cycle=10,
                                     num_victims=40)
        assert (3, 3) not in {
            e.gpm for e in timeline.events if isinstance(e, KillGpm)
        }

    def test_cpu_artery_links_degrade_first(self):
        timeline = recovery_scenario(7, 7, seed=1, kill_cycle=10,
                                     degrade_cycle=5, num_slow_links=4)
        slow = {e.link for e in timeline.events if isinstance(e, DegradeLink)}
        assert all((3, 3) in link for link in slow)

    def test_num_victims_validation(self):
        with pytest.raises(ConfigurationError):
            recovery_scenario(3, 3, seed=1, kill_cycle=10, num_victims=0)
        with pytest.raises(ConfigurationError):
            recovery_scenario(3, 3, seed=1, kill_cycle=10, num_victims=8)

    def test_recover_must_follow_kill(self):
        with pytest.raises(ConfigurationError):
            recovery_scenario(7, 7, seed=1, kill_cycle=10, recover_cycle=10)


class TestRetryPolicyCycles:
    def test_delay_cycles_are_integers(self):
        # Satellite: cycle-domain callers must never receive floats.
        policy = RetryPolicy(base_delay=100.0, multiplier=2.0)
        delays = [policy.delay_cycles_for(a) for a in range(4)]
        assert delays == [100, 200, 400, 800]
        assert all(isinstance(d, int) for d in delays)

    def test_integer_multiplier_is_exact_at_depth(self):
        policy = RetryPolicy(base_delay=3.0, multiplier=2.0)
        assert policy.delay_cycles_for(40) == 3 * 2 ** 40

    def test_non_integer_multiplier_truncates_once(self):
        policy = RetryPolicy(base_delay=100.0, multiplier=1.5)
        assert policy.delay_cycles_for(2) == int(100 * 1.5 ** 2)

    def test_max_delay_caps_in_cycles(self):
        policy = RetryPolicy(base_delay=100.0, multiplier=10.0,
                             max_delay=500.0)
        assert policy.delay_cycles_for(5) == 500


class TestLinkBandwidth:
    def test_degraded_link_serialises_slower(self):
        link = Link((0, 0), (1, 0), latency=4, bytes_per_cycle=768)
        link.transmit(0, 768 * 8, is_translation=False)
        healthy = link.last_serialization
        link.bandwidth_factor = 0.25
        link.transmit(link.busy_until, 768 * 8, is_translation=False)
        assert link.last_serialization == 4 * healthy

    def test_busy_until_stays_integer(self):
        link = Link((0, 0), (1, 0), latency=4, bytes_per_cycle=768)
        link.bandwidth_factor = 1.0 / 3.0
        delivery = link.transmit(7, 1000, is_translation=True)
        assert isinstance(link.busy_until, int)
        assert isinstance(delivery, int)


class TestFaultStateTimeline:
    def _state(self, **kwargs):
        return FaultState(FaultPlan(**kwargs), MeshTopology(5, 5))

    def test_dynamic_only_with_timeline(self):
        assert not self._state().dynamic
        assert self._state(
            timeline=FaultTimeline(events=(KillGpm(5, (0, 0)),))
        ).dynamic

    def test_timeline_validation_rejects_cpu_and_off_mesh(self):
        with pytest.raises(ConfigurationError):
            self._state(timeline=FaultTimeline(events=(KillGpm(5, (2, 2)),)))
        with pytest.raises(ConfigurationError):
            self._state(timeline=FaultTimeline(events=(KillGpm(5, (9, 0)),)))
        with pytest.raises(ConfigurationError):
            self._state(timeline=FaultTimeline(
                events=(RestoreLink(5, ((0, 0), (2, 0))),)
            ))

    def test_kill_and_recover_update_liveness(self):
        state = self._state(
            timeline=FaultTimeline(events=(KillGpm(5, (0, 0)),))
        )
        gpm_id = state.coord_to_id[(0, 0)]
        epoch = state.topology_epoch
        state.kill_gpm(gpm_id)
        assert not state.gpm_alive(gpm_id)
        assert not state.tile_alive((0, 0))
        assert gpm_id not in state.live_gpm_ids
        assert state.remap_owner(gpm_id) in state.live_gpm_ids
        state.recover_gpm(gpm_id)
        assert state.gpm_alive(gpm_id)
        assert state.topology_epoch == epoch + 2

    def test_restored_link_returns_to_xy_route(self):
        # Satellite regression: the route cache must not serve a stale
        # detour after RestoreLink resurrects the link.
        state = self._state(dead_links=(((0, 0), (1, 0)),))
        links, extra = state.route((0, 0), (2, 0))
        assert extra == 2
        state.restore_link(((0, 0), (1, 0)))
        links, extra = state.route((0, 0), (2, 0))
        assert extra == 0
        assert links == route_links((0, 0), (2, 0), 5, 5)

    def test_degrade_and_restore_track_factors(self):
        state = self._state()
        state.degrade_link(((1, 0), (0, 0)), 0.125)
        assert state.degraded[((0, 0), (1, 0))] == 0.125
        state.restore_link(((0, 0), (1, 0)))
        assert not state.degraded


class TestNetworkRestore:
    def test_traffic_returns_to_xy_after_restore(self, sim):
        topology = MeshTopology(5, 5)
        faults = FaultState(
            FaultPlan(dead_links=(((0, 0), (1, 0)),)), topology
        )
        network = MeshNetwork(sim, topology, faults=faults)
        received = []
        message = Message(MessageKind.TRANSLATION_REQ, (0, 0), (2, 0), None)
        network.send(message, received.append)
        sim.run()
        assert faults.counters["rerouted_hops"] == 2
        faults.restore_link(((0, 0), (1, 0)))
        network.send(message, received.append)
        sim.run()
        # The second send took the plain XY route: no new detour hops.
        assert faults.counters["rerouted_hops"] == 2
        assert len(received) == 2


class TestDegradationPlanProperties:
    @staticmethod
    def _slow_links(plan):
        if plan.timeline is None:
            return set()
        return {
            event.link
            for event in plan.timeline.events
            if isinstance(event, DegradeLink) and event.cycle == 0
        }

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 999),
        f1=st.floats(0.0, 1.0),
        f2=st.floats(0.0, 1.0),
    )
    def test_severity_sweep_degrades_nested_scenarios(self, seed, f1, f2):
        # Satellite property: with a fixed seed, raising the severity
        # knob only ever *adds* faults — dead sets nest, and a fail-slow
        # link stays slow or dies, it never silently heals.
        lo, hi = sorted((f1, f2))
        small = degradation_plan(5, 5, seed, lo)
        large = degradation_plan(5, 5, seed, hi)
        assert set(small.dead_links) <= set(large.dead_links)
        assert set(small.dead_gpms) <= set(large.dead_gpms)
        dead_or_slow = self._slow_links(large) | set(large.dead_links)
        assert self._slow_links(small) <= dead_or_slow


class TestEndToEndRecovery:
    def test_recovered_run_completes_every_access(self):
        # Leak regression: an access in its data phase at kill time must
        # be re-issued after recovery, not lost to a stale completion —
        # the run ends with the full trace complete.
        config = wafer_7x7_config().with_faults(
            FaultPlan(seed=9, timeline=_scenario(recover=True))
        )
        result = run_benchmark(config, "spmv", scale=SCALE, seed=3)
        assert result.extras["all_finished"]
        assert result.extras["completed_accesses"] == result.total_accesses
        counters = result.extras["faults"]["counters"]
        assert counters["timeline.kills"] == 2
        assert counters["timeline.recoveries"] == 2
        assert counters["timeline.drained_pages"] > 0
        assert counters["timeline.rehomed_pages"] > 0

    def test_failstop_loses_the_victims_work(self):
        config = wafer_7x7_config().with_faults(
            FaultPlan(seed=9, timeline=_scenario(recover=False))
        )
        result = run_benchmark(config, "spmv", scale=SCALE, seed=3)
        assert result.extras["completed_accesses"] < result.total_accesses
        counters = result.extras["faults"]["counters"]
        assert counters["timeline.kills"] == 2
        assert counters.get("timeline.recoveries", 0) == 0
        assert counters.get("timeline.drained_pages", 0) == 0

    def test_sanitize_green_under_mid_run_bandwidth_changes(self):
        # Satellite: the conservation sanitizer's shadow ledger must
        # track per-message serialisation even while links change factor.
        config = wafer_7x7_config().with_hdpat(
            HDPATConfig.full()
        ).with_faults(FaultPlan(seed=9, timeline=_scenario(recover=True)))
        result = run_benchmark(
            config, "spmv", scale=SCALE, seed=3, sanitize=True
        )
        assert result.extras["sanitizers"]["violations"] == 0
        assert result.extras["all_finished"]

    def test_timeline_run_is_deterministic(self):
        config = wafer_7x7_config().with_faults(
            FaultPlan(seed=9, timeline=_scenario(recover=True))
        )
        a = result_digest(run_benchmark(config, "spmv", scale=SCALE, seed=3))
        b = result_digest(run_benchmark(config, "spmv", scale=SCALE, seed=3))
        assert a == b


class TestRecoveryExperiment:
    def test_three_way_ordering_is_monotone(self):
        result = ext_recovery.run(scale=0.03, seed=3)
        assert result.series["recovery"]
        for key, curve in result.series["recovery"].items():
            variants = [variant for variant, _slowdown in curve]
            assert variants == ["healthy", "recovered", "failstop"]
            slowdowns = [slowdown for _variant, slowdown in curve]
            assert slowdowns[0] == pytest.approx(1.0)
            assert slowdowns[0] <= slowdowns[1] <= slowdowns[2], key


class TestRecoveryCLI:
    def test_cli_accepts_plan_json(self, tmp_path, capsys):
        from repro.system.cli import main

        plan_path = tmp_path / "plan.json"
        plan = FaultPlan(seed=9, timeline=_scenario(recover=True))
        plan_path.write_text(json.dumps(plan.to_dict()))
        assert main(["spmv", "--scale", "0.02", "--seed", "3",
                     "--faults", str(plan_path)]) == 0
        out = capsys.readouterr().out
        assert "timeline:" in out
        assert "2 kills, 2 recoveries" in out

    def test_cli_rejects_unreadable_plan(self, capsys):
        from repro.system.cli import main

        assert main(["spmv", "--faults", "/no/such/plan.json"]) == 2
        assert "cannot load fault plan" in capsys.readouterr().err
