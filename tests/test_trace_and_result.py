"""Tests for the trace container and run-result derivations."""

import pytest

from repro.core.request import ServedBy
from repro.errors import WorkloadError
from repro.system.result import RunResult
from repro.workloads.trace import WorkloadTrace


def _trace(**overrides):
    kwargs = dict(name="t", per_gpm=[[1, 2], [3]], burst=4, interval=1)
    kwargs.update(overrides)
    return WorkloadTrace(**kwargs)


class TestWorkloadTrace:
    def test_totals(self):
        trace = _trace()
        assert trace.num_gpms == 2
        assert trace.total_accesses == 3

    def test_merged_stream_round_robin(self):
        trace = _trace(per_gpm=[[1, 3], [2, 4], [5]])
        assert trace.merged_stream() == [1, 2, 5, 3, 4]

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            _trace(per_gpm=[])

    def test_bad_issue_shape_rejected(self):
        with pytest.raises(WorkloadError):
            _trace(burst=0)
        with pytest.raises(WorkloadError):
            _trace(interval=0)


def _result(**overrides):
    kwargs = dict(
        workload="x",
        config_description="cfg",
        exec_cycles=1000,
        per_gpm_finish=[900, 1000],
        served_by={
            ServedBy.LOCAL_L1: 10,
            ServedBy.PEER: 2,
            ServedBy.REDIRECT: 3,
            ServedBy.PROACTIVE: 5,
            ServedBy.IOMMU: 10,
        },
        total_accesses=100,
        iommu_requests=20,
        iommu_walks=10,
        iommu_coalesced=0,
        iommu_redirects=3,
        latency_breakdown={},
        latency_percent={},
        prefetch_pushed=10,
        total_link_bytes=1000,
        translation_link_bytes=100,
        mean_hops=3.0,
        mean_rtt=500.0,
        remote_translations=20,
    )
    kwargs.update(overrides)
    return RunResult(**kwargs)


class TestRunResult:
    def test_speedup(self):
        fast = _result(exec_cycles=500)
        slow = _result(exec_cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_invalid(self):
        with pytest.raises(ValueError):
            _result(exec_cycles=0).speedup_over(_result())

    def test_remote_breakdown_fractions(self):
        breakdown = _result().remote_breakdown()
        assert breakdown["peer"] == pytest.approx(0.1)
        assert breakdown["redirect"] == pytest.approx(0.15)
        assert breakdown["proactive"] == pytest.approx(0.25)
        assert breakdown["iommu"] == pytest.approx(0.5)

    def test_remote_breakdown_no_remote(self):
        result = _result(served_by={ServedBy.LOCAL_L1: 5})
        assert result.remote_breakdown()["iommu"] == 1.0

    def test_offload_fraction(self):
        assert _result().offload_fraction() == pytest.approx(0.5)

    def test_local_fraction(self):
        assert _result().local_fraction() == pytest.approx(10 / 30)

    def test_prefetch_accuracy_capped(self):
        result = _result(prefetch_pushed=2)  # 5 proactive > 2 pushed
        assert result.prefetch_accuracy() == 1.0

    def test_prefetch_accuracy_zero_when_nothing_pushed(self):
        assert _result(prefetch_pushed=0).prefetch_accuracy() == 0.0

    def test_exec_ms(self):
        assert _result(exec_cycles=2_000_000).exec_ms == pytest.approx(2.0)

    def test_gpm_finish_ms(self):
        ms = _result().gpm_finish_ms()
        assert len(ms) == 2 and ms[0] < ms[1]

    def test_served_helper(self):
        assert _result().served(ServedBy.PEER) == 2
        assert _result().served(ServedBy.LOCAL_WALK) == 0
