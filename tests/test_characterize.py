"""Tests pinning every benchmark to its declared pattern class via the
offline characterizer."""

import pytest

from repro.mem.address import AddressSpace
from repro.mem.allocator import PageAllocator
from repro.workloads.characterize import TraceProfile, _gini, characterize
from repro.workloads.registry import BENCHMARK_NAMES, get_workload


def _profile(name, scale=0.08, num_gpms=48):
    allocator = PageAllocator(AddressSpace(), num_gpms)
    trace = get_workload(name).generate(
        num_gpms=num_gpms, allocator=allocator, scale=scale, seed=9
    )
    return characterize(trace, allocator)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_high(self):
        assert _gini([0, 0, 0, 100]) > 0.7

    def test_empty(self):
        assert _gini([]) == 0.0


class TestProfiles:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_profile_is_well_formed(self, name):
        profile = _profile(name, scale=0.05)
        assert profile.total_accesses > 0
        assert 0.0 <= profile.local_ownership_fraction <= 1.0
        assert 0.0 <= profile.locality_fraction <= 1.0
        assert 0.0 <= profile.single_touch_fraction <= 1.0
        assert -0.01 <= profile.page_touch_gini <= 1.0
        assert profile.mean_touches_per_page >= 1.0

    def test_pr_is_hub_heavy(self):
        profile = _profile("pr")
        assert profile.shared_page_gini > 0.45
        assert profile.pattern_class == "scatter-gather (hub-heavy)"

    def test_relu_is_streaming(self):
        profile = _profile("relu")
        assert profile.single_touch_fraction > 0.9
        assert profile.locality_fraction > 0.5
        assert profile.pattern_class == "streaming (adjacent)"

    def test_fir_is_streaming(self):
        assert _profile("fir").pattern_class == "streaming (adjacent)"

    def test_bt_is_partitioned(self):
        profile = _profile("bt")
        assert profile.local_ownership_fraction > 0.6
        assert profile.pattern_class == "partitioned"

    def test_spmv_is_mixed(self):
        assert _profile("spmv").pattern_class == "random/mixed"

    def test_mt_shared_writes_not_hub_concentrated(self):
        profile = _profile("mt")
        assert profile.shared_page_gini < 0.45

    def test_fir_locality_beats_spmv(self):
        assert (
            _profile("fir").locality_fraction
            > _profile("spmv").locality_fraction
        )

    def test_mean_touches_ordering_matches_fig6(self):
        # PR re-touches pages far more than RELU (Fig. 6's extremes).
        assert (
            _profile("pr").mean_touches_per_page
            > 3 * _profile("relu").mean_touches_per_page
        )
