"""Tests for the mesh topology: rings, quadrants, distances."""

import pytest

from repro.errors import ConfigurationError
from repro.noc.topology import MeshTopology


class TestConstruction:
    def test_7x7_has_48_gpms(self):
        topology = MeshTopology(7, 7)
        assert topology.num_gpms == 48
        assert topology.cpu_coordinate == (3, 3)

    def test_7x12_has_83_gpms(self):
        topology = MeshTopology(7, 12)
        assert topology.num_gpms == 83

    def test_mcm_row_layout(self):
        topology = MeshTopology(5, 1)
        assert topology.num_gpms == 4
        assert topology.cpu_coordinate == (2, 0)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(1, 1)

    def test_tile_ids_unique(self):
        topology = MeshTopology(5, 5)
        ids = [tile.tile_id for tile in topology.tiles]
        assert len(set(ids)) == len(ids) == 25

    def test_tile_at_out_of_range(self):
        topology = MeshTopology(3, 3)
        with pytest.raises(ConfigurationError):
            topology.tile_at(5, 5)


class TestDistances:
    def test_manhattan(self):
        assert MeshTopology.manhattan((0, 0), (3, 4)) == 7

    def test_chebyshev_from_cpu(self):
        topology = MeshTopology(7, 7)
        assert topology.chebyshev_from_cpu((3, 3)) == 0
        assert topology.chebyshev_from_cpu((4, 4)) == 1
        assert topology.chebyshev_from_cpu((0, 0)) == 3
        assert topology.chebyshev_from_cpu((3, 0)) == 3

    def test_hops_to_cpu(self):
        topology = MeshTopology(7, 7)
        assert topology.hops_to_cpu((0, 0)) == 6


class TestRings:
    def test_ring_sizes_in_7x7(self):
        topology = MeshTopology(7, 7)
        assert len(topology.ring_members(1)) == 8
        assert len(topology.ring_members(2)) == 16
        assert len(topology.ring_members(3)) == 24

    def test_rings_partition_the_wafer(self):
        topology = MeshTopology(7, 7)
        total = sum(len(topology.ring_members(r)) for r in (1, 2, 3))
        assert total == topology.num_gpms

    def test_complete_rings_7x7(self):
        assert MeshTopology(7, 7).complete_rings() == [1, 2, 3]

    def test_complete_rings_7x12(self):
        # Width 7 limits complete rings to Chebyshev distance 3.
        assert MeshTopology(7, 12).complete_rings() == [1, 2, 3]

    def test_ring_members_are_at_correct_distance(self):
        topology = MeshTopology(7, 7)
        for ring in (1, 2, 3):
            for tile in topology.ring_members(ring):
                assert topology.chebyshev_from_cpu(tile.coordinate) == ring

    def test_ring_ordering_is_clockwise_walk(self):
        topology = MeshTopology(7, 7)
        members = topology.ring_members(1)
        # Starts at the top-left corner of the ring and ends on the left side.
        assert members[0].coordinate == (2, 2)
        coords = [m.coordinate for m in members]
        assert len(set(coords)) == 8
        # consecutive members are mesh-adjacent (a closed walk).
        for a, b in zip(coords, coords[1:]):
            assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) == 1

    def test_ring_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            MeshTopology(7, 7).ring_members(0)


class TestQuadrants:
    def test_quadrants_balanced_on_ring(self):
        topology = MeshTopology(7, 7)
        for ring in (1, 2):
            quadrants = [
                topology.quadrant_of(t.coordinate)
                for t in topology.ring_members(ring)
            ]
            for quadrant in range(4):
                assert quadrants.count(quadrant) == len(quadrants) // 4

    def test_quadrant_values_in_range(self):
        topology = MeshTopology(5, 5)
        for tile in topology.gpm_tiles:
            assert 0 <= topology.quadrant_of(tile.coordinate) <= 3
