"""Tests for the BENCH harness: record schema, numbering, comparator, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import BenchError
from repro.obs import bench as bench_module
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    FIRST_BENCH_ID,
    BenchHarness,
    compare_bench,
    format_comparison,
    load_bench,
    machine_fingerprint,
    main,
    next_bench_path,
    write_bench,
)


def _record(benchmarks):
    """A minimal, valid BENCH record around the given benchmarks dict."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "machine": machine_fingerprint(),
        "git_sha": "test",
        "suite_scale": 0.02,
        "seed": 1,
        "digests_verified": False,
        "benchmarks": benchmarks,
        "total_wall_seconds": sum(
            b.get("wall_seconds", 0.0) for b in benchmarks.values()
        ),
    }


def _bench(wall, digest="d0", events=1000):
    return {
        "kind": "micro",
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": (events / wall) if wall else 0.0,
        "peak_rss_kb": 1,
        "cache_hit_rates": {},
        "phase_seconds": {},
        "digest": digest,
        "digest_verified": None,
    }


@pytest.fixture
def fast_micros(monkeypatch):
    """Shrink the micro-benchmarks so harness tests stay fast."""
    monkeypatch.setattr(bench_module, "TLB_MICRO_ITERATIONS", 2_000)
    monkeypatch.setattr(bench_module, "HEAP_MICRO_EVENTS", 2_000)


# ----------------------------------------------------------------------
# Record schema and I/O
# ----------------------------------------------------------------------
class TestRecordIO:
    def test_round_trip(self, tmp_path):
        record = _record({"m": _bench(0.5)})
        path = str(tmp_path / "BENCH_6.json")
        write_bench(record, path)
        assert load_bench(path) == record

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchError, match="not found"):
            load_bench(str(tmp_path / "BENCH_99.json"))

    def test_unparseable_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="unreadable"):
            load_bench(str(path))

    def test_non_record_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(BenchError, match="no schema"):
            load_bench(str(path))

    def test_newer_schema_rejected(self, tmp_path):
        record = _record({"m": _bench(0.5)})
        record["schema"] = BENCH_SCHEMA_VERSION + 1
        path = str(tmp_path / "BENCH_6.json")
        write_bench(record, path)
        with pytest.raises(BenchError, match="newer than the supported"):
            load_bench(path)

    def test_invalid_schema_rejected(self, tmp_path):
        record = _record({"m": _bench(0.5)})
        record["schema"] = "one"
        path = str(tmp_path / "BENCH_6.json")
        write_bench(record, path)
        with pytest.raises(BenchError, match="invalid schema"):
            load_bench(path)

    def test_missing_benchmarks_rejected(self, tmp_path):
        path = tmp_path / "BENCH_6.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA_VERSION}))
        with pytest.raises(BenchError, match="no benchmarks"):
            load_bench(str(path))

    def test_numbering_starts_at_first_id(self, tmp_path):
        path, bench_id = next_bench_path(str(tmp_path))
        assert bench_id == FIRST_BENCH_ID
        assert path.endswith(f"BENCH_{FIRST_BENCH_ID}.json")

    def test_numbering_continues_from_largest(self, tmp_path):
        (tmp_path / "BENCH_6.json").write_text("{}")
        (tmp_path / "BENCH_11.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored
        _path, bench_id = next_bench_path(str(tmp_path))
        assert bench_id == 12

    def test_numbering_in_missing_dir(self, tmp_path):
        _path, bench_id = next_bench_path(str(tmp_path / "nope"))
        assert bench_id == FIRST_BENCH_ID


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
class TestComparator:
    def test_identical_records_clean(self):
        record = _record({"a": _bench(1.0), "b": _bench(0.2, digest="d2")})
        comparison = compare_bench(record, record)
        assert comparison["regressions"] == []
        assert comparison["digest_mismatches"] == []
        assert comparison["added"] == [] and comparison["removed"] == []
        assert all(row["status"] == "ok" for row in comparison["rows"])

    def test_slowdown_past_threshold_is_regression(self):
        base = _record({"a": _bench(1.0)})
        cur = _record({"a": _bench(1.6)})
        comparison = compare_bench(cur, base, threshold=0.5)
        assert comparison["regressions"] == ["a"]
        assert comparison["rows"][0]["status"] == "regression"

    def test_slowdown_below_threshold_is_ok(self):
        base = _record({"a": _bench(1.0)})
        cur = _record({"a": _bench(1.4)})
        assert compare_bench(cur, base, threshold=0.5)["regressions"] == []

    def test_min_seconds_floor_suppresses_noise(self):
        # 10x slower but still under the absolute floor: not a regression.
        base = _record({"a": _bench(0.001)})
        cur = _record({"a": _bench(0.01)})
        comparison = compare_bench(cur, base, threshold=0.5, min_seconds=0.05)
        assert comparison["regressions"] == []

    def test_zero_time_baseline_never_divides(self):
        base = _record({"a": _bench(0.0)})
        cur = _record({"a": _bench(1.0)})
        comparison = compare_bench(cur, base)
        row = comparison["rows"][0]
        assert row["delta_pct"] is None
        assert comparison["regressions"] == []

    def test_zero_time_both_sides(self):
        record = _record({"a": _bench(0.0)})
        comparison = compare_bench(record, record)
        assert comparison["regressions"] == []
        assert comparison["digest_mismatches"] == []

    def test_added_and_removed_benchmarks(self):
        base = _record({"a": _bench(1.0), "gone": _bench(0.3)})
        cur = _record({"a": _bench(1.0), "new": _bench(0.4)})
        comparison = compare_bench(cur, base)
        assert comparison["added"] == ["new"]
        assert comparison["removed"] == ["gone"]
        statuses = {row["benchmark"]: row["status"]
                    for row in comparison["rows"]}
        assert statuses == {"a": "ok", "new": "added", "gone": "removed"}

    def test_digest_mismatch_detected(self):
        base = _record({"a": _bench(1.0, digest="old")})
        cur = _record({"a": _bench(1.0, digest="new")})
        comparison = compare_bench(cur, base)
        assert comparison["digest_mismatches"] == ["a"]

    def test_missing_digest_is_not_a_mismatch(self):
        base = _record({"a": _bench(1.0, digest=None)})
        cur = _record({"a": _bench(1.0, digest="d")})
        comparison = compare_bench(cur, base)
        assert comparison["digest_mismatches"] == []
        assert comparison["rows"][0]["digest_match"] is None

    def test_format_renders_all_row_kinds(self):
        base = _record({
            "slow": _bench(1.0),
            "bad": _bench(1.0, digest="x"),
            "gone": _bench(0.2),
        })
        cur = _record({
            "slow": _bench(2.0),
            "bad": _bench(1.0, digest="y"),
            "new": _bench(0.1),
        })
        text = format_comparison(compare_bench(cur, base))
        assert "REGRESSION" in text
        assert "MISMATCH" in text
        assert "added" in text and "removed" in text

    def test_format_notes_machine_difference(self):
        base = _record({"a": _bench(1.0)})
        cur = _record({"a": _bench(1.0)})
        cur["machine"] = {"platform": "elsewhere"}
        text = format_comparison(compare_bench(cur, base))
        assert "different machine" in text


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
class TestHarness:
    def test_suite_covers_required_benchmarks(self):
        names = set(BenchHarness().suite())
        assert len(names) >= 6
        assert any(name.startswith("fig14") for name in names)
        assert any(name.startswith("fig6") for name in names)
        assert any(name.startswith("ext_faults") for name in names)
        assert "micro_tlb_lookup" in names
        assert "micro_engine_heap" in names

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(BenchError, match="unknown benchmark"):
            BenchHarness().run(["nope"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(BenchError, match="scale"):
            BenchHarness(scale=0.0)

    def test_micro_record_shape_and_digest_stability(self, fast_micros):
        harness = BenchHarness()
        record = harness.run(["micro_tlb_lookup", "micro_engine_heap"])
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["machine"]["platform"]
        for name in ("micro_tlb_lookup", "micro_engine_heap"):
            entry = record["benchmarks"][name]
            assert entry["events"] > 0
            assert entry["wall_seconds"] >= 0
            assert entry["digest"]
        again = harness.run(["micro_tlb_lookup", "micro_engine_heap"])
        for name, entry in record["benchmarks"].items():
            assert again["benchmarks"][name]["digest"] == entry["digest"]

    def test_sim_benchmark_verifies_digest(self):
        harness = BenchHarness(scale=0.02, seed=1)
        record = harness.run(["fig6_counts_bt"])
        entry = record["benchmarks"]["fig6_counts_bt"]
        assert entry["digest_verified"] is True
        assert entry["events"] > 0
        assert entry["phase_seconds"]  # attribution rode along
        assert "l1v" in entry["cache_hit_rates"]


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestCLI:
    def _write(self, tmp_path, name, record):
        path = str(tmp_path / name)
        write_bench(record, path)
        return path

    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        assert "micro_tlb_lookup" in capsys.readouterr().out

    def test_clean_replay_exits_zero(self, tmp_path, capsys):
        record = _record({"a": _bench(1.0)})
        path = self._write(tmp_path, "BENCH_6.json", record)
        assert main(["--replay", path, "--against", path]) == 0

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _record({"a": _bench(1.0)}))
        slow = self._write(tmp_path, "slow.json", _record({"a": _bench(3.0)}))
        assert main(["--replay", slow, "--against", base]) == 1

    def test_digest_mismatch_exits_two(self, tmp_path, capsys):
        base = self._write(
            tmp_path, "base.json", _record({"a": _bench(1.0, digest="x")})
        )
        bad = self._write(
            tmp_path, "bad.json", _record({"a": _bench(1.0, digest="y")})
        )
        assert main(["--replay", bad, "--against", base]) == 2

    def test_fail_on_none_always_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _record({"a": _bench(1.0)}))
        slow = self._write(tmp_path, "slow.json", _record({"a": _bench(9.0)}))
        assert main(
            ["--replay", slow, "--against", base, "--fail-on", "none"]
        ) == 0

    def test_fail_on_digest_ignores_perf(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _record({"a": _bench(1.0)}))
        slow = self._write(tmp_path, "slow.json", _record({"a": _bench(9.0)}))
        assert main(
            ["--replay", slow, "--against", base, "--fail-on", "digest"]
        ) == 0

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        record = self._write(tmp_path, "BENCH_6.json", _record({}))
        missing = str(tmp_path / "BENCH_404.json")
        assert main(["--replay", record, "--against", missing]) == 2

    def test_run_writes_numbered_record(self, tmp_path, capsys, fast_micros):
        out = str(tmp_path)
        assert main([
            "--only", "micro_engine_heap", "--out-dir", out,
        ]) == 0
        written = load_bench(str(tmp_path / f"BENCH_{FIRST_BENCH_ID}.json"))
        assert "micro_engine_heap" in written["benchmarks"]
        assert main([
            "--only", "micro_engine_heap", "--out-dir", out,
        ]) == 0
        load_bench(str(tmp_path / f"BENCH_{FIRST_BENCH_ID + 1}.json"))
