"""Tests for XY routing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.noc.routing import hop_count, route_links, xy_route

coords = st.tuples(st.integers(0, 11), st.integers(0, 11))


class TestXYRoute:
    def test_straight_line(self):
        assert xy_route((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_self_route(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_negative_direction(self):
        assert xy_route((3, 3), (1, 3)) == [(3, 3), (2, 3), (1, 3)]

    @given(coords, coords)
    def test_route_length_is_manhattan_plus_one(self, src, dst):
        assert len(xy_route(src, dst)) == hop_count(src, dst) + 1

    @given(coords, coords)
    def test_route_steps_are_adjacent(self, src, dst):
        path = xy_route(src, dst)
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(coords, coords)
    def test_route_endpoints(self, src, dst):
        path = xy_route(src, dst)
        assert path[0] == src and path[-1] == dst


class TestRouteLinks:
    def test_links_connect_path(self):
        links = route_links((0, 0), (2, 0))
        assert links == [((0, 0), (1, 0)), ((1, 0), (2, 0))]

    def test_zero_hop_has_no_links(self):
        assert route_links((1, 1), (1, 1)) == []
