"""Tests for XY routing and fault-aware detour routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingError, UnreachableError
from repro.noc.routing import (
    detour_links,
    detour_route,
    hop_count,
    route_links,
    xy_route,
)

coords = st.tuples(st.integers(0, 11), st.integers(0, 11))


class TestXYRoute:
    def test_straight_line(self):
        assert xy_route((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_self_route(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_negative_direction(self):
        assert xy_route((3, 3), (1, 3)) == [(3, 3), (2, 3), (1, 3)]

    @given(coords, coords)
    def test_route_length_is_manhattan_plus_one(self, src, dst):
        assert len(xy_route(src, dst)) == hop_count(src, dst) + 1

    @given(coords, coords)
    def test_route_steps_are_adjacent(self, src, dst):
        path = xy_route(src, dst)
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(coords, coords)
    def test_route_endpoints(self, src, dst):
        path = xy_route(src, dst)
        assert path[0] == src and path[-1] == dst


class TestRouteLinks:
    def test_links_connect_path(self):
        links = route_links((0, 0), (2, 0))
        assert links == [((0, 0), (1, 0)), ((1, 0), (2, 0))]

    def test_zero_hop_has_no_links(self):
        assert route_links((1, 1), (1, 1)) == []


class TestBoundsChecking:
    def test_negative_coordinate_always_rejected(self):
        with pytest.raises(RoutingError):
            xy_route((-1, 0), (2, 0))

    def test_upper_bound_checked_when_dims_given(self):
        with pytest.raises(RoutingError):
            xy_route((0, 0), (7, 0), 7, 7)

    def test_on_mesh_endpoints_pass(self):
        assert xy_route((0, 0), (6, 6), 7, 7)[-1] == (6, 6)


class TestDegenerateMeshes:
    def test_single_row_routes_along_x(self):
        assert xy_route((0, 0), (4, 0), 5, 1) == [
            (0, 0), (1, 0), (2, 0), (3, 0), (4, 0)
        ]

    def test_single_column_routes_along_y(self):
        assert xy_route((0, 0), (0, 3), 1, 4) == [
            (0, 0), (0, 1), (0, 2), (0, 3)
        ]

    def test_single_row_detour_with_dead_link_is_unreachable(self):
        # A 1xN mesh has no alternate path around any dead link.
        dead = {((1, 0), (2, 0)), ((2, 0), (1, 0))}
        with pytest.raises(UnreachableError):
            detour_route((0, 0), (4, 0), 5, 1, dead)


class TestDetour:
    DEAD = {((1, 0), (2, 0)), ((2, 0), (1, 0))}

    def test_detour_avoids_dead_links(self):
        links = detour_links((0, 0), (3, 0), 4, 2, self.DEAD)
        assert not any(link in self.DEAD for link in links)
        assert links[0][0] == (0, 0) and links[-1][1] == (3, 0)

    def test_detour_is_shortest_alternative(self):
        # Around one dead horizontal link the detour costs exactly 2 extra.
        path = detour_route((0, 0), (3, 0), 4, 2, self.DEAD)
        assert len(path) - 1 == hop_count((0, 0), (3, 0)) + 2

    def test_detour_no_dead_links_matches_manhattan(self):
        path = detour_route((0, 0), (2, 2), 4, 4, frozenset())
        assert len(path) - 1 == hop_count((0, 0), (2, 2))

    def test_detour_src_equals_dst(self):
        assert detour_route((1, 1), (1, 1), 4, 4, self.DEAD) == [(1, 1)]

    def test_detour_deterministic(self):
        runs = [
            detour_route((0, 0), (3, 1), 4, 2, set(self.DEAD))
            for _ in range(5)
        ]
        assert all(run == runs[0] for run in runs)

    def test_fully_cut_destination_raises(self):
        # Sever every link into (3, 0) on a 4x2 mesh.
        dead = set()
        for neighbor in ((2, 0), (3, 1)):
            dead.add(((3, 0), neighbor))
            dead.add((neighbor, (3, 0)))
        with pytest.raises(UnreachableError):
            detour_route((0, 0), (3, 0), 4, 2, dead)
