"""Tests for repro.exec: job identity, disk cache, executor, CLI wiring."""

import json

import pytest

from repro.core.baselines.registry import sota_policy
from repro.core.request import ServedBy
from repro.exec import (
    CACHE_SCHEMA,
    DiskResultCache,
    RunJob,
    SweepExecutor,
    default_jobs,
    execute_job,
    make_job,
)
from repro.experiments.cli import main
from repro.experiments.common import RunCache
from repro.system.result import RunResult
from repro.system.runner import run_benchmark

FAST = dict(scale=0.02, seed=1)


@pytest.fixture(scope="module")
def aes_result(small_system_config):
    return run_benchmark(small_system_config, "aes", scale=0.02, seed=1)


@pytest.fixture(scope="module")
def small_system_config(tiny_gpm_config):
    # Module-scoped twin of the conftest fixture so expensive runs are
    # shared across this file's tests.
    from repro.config.iommu import IOMMUConfig
    from repro.config.system import SystemConfig

    return SystemConfig(
        mesh_width=3,
        mesh_height=3,
        gpm=tiny_gpm_config,
        iommu=IOMMUConfig(
            num_walkers=4,
            walk_latency=100,
            buffer_capacity=256,
            pw_queue_capacity=8,
            redirection_entries=64,
        ),
    )


@pytest.fixture(scope="module")
def tiny_gpm_config():
    from repro.config.gpm import GPMConfig, TLBConfig

    return GPMConfig(
        name="tiny",
        num_cus=4,
        l1_vector_tlb=TLBConfig(1, 8, 4, 4),
        l1_scalar_tlb=TLBConfig(1, 8, 4, 4),
        l1_inst_tlb=TLBConfig(1, 8, 4, 4),
        l2_tlb=TLBConfig(8, 8, 8, 32),
        gmmu_cache=TLBConfig(8, 4, 4, 8),
        gmmu_walkers=2,
        walk_latency=100,
        cuckoo_capacity=4096,
        outstanding_per_cu=4,
        issue_width=2,
    )


class TestRunJob:
    def test_cache_key_stable(self, small_system_config):
        a = make_job(small_system_config, "aes", 0.02, seed=1)
        b = make_job(small_system_config, "aes", 0.02, seed=1)
        assert a.cache_key() == b.cache_key()
        assert a.memory_key == b.memory_key

    def test_cache_key_covers_every_coordinate(self, small_system_config):
        base = make_job(small_system_config, "aes", 0.02, seed=1)
        variants = [
            make_job(small_system_config, "fir", 0.02, seed=1),
            make_job(small_system_config, "aes", 0.03, seed=1),
            make_job(small_system_config, "aes", 0.02, seed=2),
            make_job(small_system_config, "aes", 0.02, seed=1,
                     policy_key="transfw"),
            make_job(small_system_config, "aes", 0.02, seed=1,
                     max_cycles=1000),
        ]
        keys = {base.cache_key()} | {v.cache_key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_rich_flag_does_not_change_identity(self, small_system_config):
        plain = make_job(small_system_config, "aes", 0.02, seed=1)
        rich = make_job(small_system_config, "aes", 0.02, seed=1, rich=True)
        # Same simulation -> same stored artefact; richness only gates
        # whether the JSON may *serve* the request.
        assert plain.cache_key() == rich.cache_key()

    def test_pool_safety(self, small_system_config):
        plain = make_job(small_system_config, "aes", 0.02, seed=1)
        assert plain.pool_safe()
        # A custom factory under a non-SOTA key cannot be revived in a
        # worker process.
        assert not plain.pool_safe(policy_factory=lambda: None)
        sota = make_job(small_system_config, "aes", 0.02, seed=1,
                        policy_key="transfw")
        factory = lambda: sota_policy("transfw", small_system_config.hdpat)
        assert sota.pool_safe(policy_factory=factory)
        complex_kwargs = RunJob(
            config=small_system_config, workload="aes", scale=0.02,
            run_kwargs=(("obs", object()),),
        )
        assert not complex_kwargs.pool_safe()


class TestRunResultRoundTrip:
    def test_to_from_to_dict_identity(self, aes_result):
        first = aes_result.to_dict()
        revived = RunResult.from_dict(json.loads(json.dumps(first)))
        assert revived.to_dict() == first

    def test_served_by_keys_revived_as_enums(self, aes_result):
        revived = RunResult.from_dict(aes_result.to_dict())
        assert revived.served_by
        assert all(isinstance(k, ServedBy) for k in revived.served_by)
        assert revived.served_by == aes_result.served_by

    def test_extras_carry_truncated_and_raw_accuracy(self, aes_result):
        revived = RunResult.from_dict(aes_result.to_dict())
        assert revived.extras["truncated"] == aes_result.extras["truncated"]
        assert revived.extras["prefetch_accuracy_raw"] == pytest.approx(
            aes_result.extras["prefetch_accuracy_raw"]
        )

    def test_per_gpm_finish_preserved(self, aes_result):
        revived = RunResult.from_dict(aes_result.to_dict())
        assert revived.per_gpm_finish == aes_result.per_gpm_finish


class TestDiskResultCache:
    def test_round_trip(self, tmp_path, small_system_config, aes_result):
        cache = DiskResultCache(tmp_path)
        job = make_job(small_system_config, "aes", 0.02, seed=1)
        assert cache.load(job) is None
        cache.store(job, aes_result)
        assert len(cache) == 1
        revived = cache.load(job)
        assert revived is not None
        assert revived.to_dict() == aes_result.to_dict()

    def test_schema_mismatch_is_a_miss(
        self, tmp_path, small_system_config, aes_result
    ):
        cache = DiskResultCache(tmp_path)
        job = make_job(small_system_config, "aes", 0.02, seed=1)
        cache.store(job, aes_result)
        path = cache.path_for(job)
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA + 1
        path.write_text(json.dumps(payload))
        assert cache.load(job) is None

    def test_corrupt_file_is_a_miss(
        self, tmp_path, small_system_config, aes_result
    ):
        cache = DiskResultCache(tmp_path)
        job = make_job(small_system_config, "aes", 0.02, seed=1)
        cache.store(job, aes_result)
        cache.path_for(job).write_text("{not json")
        assert cache.load(job) is None


class TestSweepExecutor:
    def test_default_jobs_leaves_a_core(self):
        assert default_jobs() >= 1

    def test_parallel_matches_serial(self, small_system_config):
        jobs = [
            make_job(small_system_config, name, 0.02, seed=1)
            for name in ("aes", "fir")
        ]
        serial = SweepExecutor(jobs=1).map(jobs)
        parallel = SweepExecutor(jobs=2).map(jobs)
        assert set(serial) == set(parallel) == {0, 1}
        for index in serial:
            assert serial[index].to_dict() == parallel[index].to_dict()

    def test_failure_recorded_not_raised(self, small_system_config):
        executor = SweepExecutor(jobs=2, retries=1)
        jobs = [
            make_job(small_system_config, "aes", 0.02, seed=1),
            make_job(small_system_config, "no-such-benchmark", 0.02, seed=1),
        ]
        results = executor.map(jobs)
        assert set(results) == {0}
        assert len(executor.failures) == 1
        failure = executor.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 2  # original + one retry
        assert failure.job["workload"] == "no-such-benchmark"
        snapshot = executor.snapshot()
        assert snapshot["sweep"]["jobs"]["failed"] == 1
        assert snapshot["sweep"]["failures"][0]["kind"] == "error"

    def test_executed_results_serve_later_from_disk(
        self, tmp_path, small_system_config
    ):
        jobs = [
            make_job(small_system_config, name, 0.02, seed=1)
            for name in ("aes", "fir")
        ]
        cold = SweepExecutor(jobs=2, cache_dir=tmp_path)
        results = cold.map(jobs)
        for index, result in results.items():
            cold.store(jobs[index], result)
        warm = SweepExecutor(jobs=2, cache_dir=tmp_path)
        for index, job in enumerate(jobs):
            cached = warm.lookup(job)
            assert cached is not None
            assert cached.to_dict() == results[index].to_dict()
        snap = warm.snapshot()["sweep"]["jobs"]
        assert snap["cache_hit_disk"] == 2
        assert snap["executed"] == 0

    def test_rich_jobs_never_served_from_disk(
        self, tmp_path, small_system_config, aes_result
    ):
        executor = SweepExecutor(jobs=2, cache_dir=tmp_path)
        rich = make_job(small_system_config, "aes", 0.02, seed=1, rich=True)
        executor.store(rich, aes_result)
        assert executor.lookup(rich) is None
        plain = make_job(small_system_config, "aes", 0.02, seed=1)
        assert executor.lookup(plain) is not None


class TestRunCacheIntegration:
    def test_warm_makes_serial_loop_pure_l1(self, small_system_config):
        executor = SweepExecutor(jobs=2)
        cache = RunCache(executor=executor)
        specs = [
            dict(config=small_system_config, workload=name, scale=0.02,
                 seed=1)
            for name in ("aes", "fir")
        ]
        cache.warm(specs)
        for name in ("aes", "fir"):
            cache.get(small_system_config, name, 0.02, seed=1)
        assert cache.misses == 0
        assert cache.hits == 2
        snap = executor.snapshot()["sweep"]["jobs"]
        assert snap["executed"] == 2
        assert snap["cache_hit_memory"] == 2

    def test_warm_is_noop_without_parallelism(self, small_system_config):
        serial = RunCache(executor=SweepExecutor(jobs=1))
        serial.warm([
            dict(config=small_system_config, workload="aes", scale=0.02,
                 seed=1)
        ])
        assert serial.misses == 0 and not serial._runs

    def test_serial_and_parallel_cache_agree(self, small_system_config):
        serial = RunCache()
        parallel = RunCache(executor=SweepExecutor(jobs=2))
        parallel.warm([
            dict(config=small_system_config, workload="aes", scale=0.02,
                 seed=1)
        ])
        a = serial.get(small_system_config, "aes", 0.02, seed=1)
        b = parallel.get(small_system_config, "aes", 0.02, seed=1)
        assert a.to_dict() == b.to_dict()

    def test_rich_get_refuses_disk_revived_l1_entry(
        self, tmp_path, small_system_config
    ):
        # A JSON-revived result lacks live analyzer objects; a rich
        # request for the same cell must re-execute, not be handed the
        # revived entry out of L1.
        seed_cache = RunCache(
            executor=SweepExecutor(jobs=1, cache_dir=tmp_path)
        )
        seed_cache.get(small_system_config, "aes", 0.02, seed=1)
        cache = RunCache(executor=SweepExecutor(jobs=1, cache_dir=tmp_path))
        revived = cache.get(small_system_config, "aes", 0.02, seed=1)
        assert cache.disk_hits == 1
        assert "iommu_analyzers" not in revived.extras
        rich = cache.get(small_system_config, "aes", 0.02, seed=1, rich=True)
        assert cache.misses == 1
        assert "iommu_analyzers" in rich.extras
        # The live result replaces the revived one and satisfies both.
        assert cache.get(small_system_config, "aes", 0.02, seed=1) is rich

    def test_disk_cache_spans_runcache_instances(
        self, tmp_path, small_system_config
    ):
        first = RunCache(executor=SweepExecutor(jobs=1, cache_dir=tmp_path))
        first.get(small_system_config, "aes", 0.02, seed=1)
        second = RunCache(executor=SweepExecutor(jobs=1, cache_dir=tmp_path))
        result = second.get(small_system_config, "aes", 0.02, seed=1)
        assert second.disk_hits == 1
        assert second.misses == 0
        assert result.workload == "aes"


class TestCLI:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main([
            "fig03", "--scale", "0.02", "--benchmarks", "aes",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
            "--metrics-out", str(metrics),
        ]) == 0
        assert "fig03" in capsys.readouterr().out
        snapshot = json.loads(metrics.read_text())
        assert snapshot["sweep"]["jobs"]["executed"] >= 1
        assert snapshot["sweep"]["failures"] == []

    def test_warm_rerun_executes_nothing(self, tmp_path, capsys):
        args = [
            "fig03", "--scale", "0.02", "--benchmarks", "aes",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        metrics = tmp_path / "metrics.json"
        assert main(args + ["--metrics-out", str(metrics)]) == 0
        second = capsys.readouterr().out

        def table(text):  # drop the wall-clock trailer line
            return [l for l in text.splitlines() if not l.startswith("[")]

        assert table(first) == table(second)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["sweep"]["jobs"]["executed"] == 0
        assert snapshot["sweep"]["jobs"]["cache_hit_disk"] >= 1

    def test_sweep_verb(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main([
            "sweep", "--benchmarks", "aes", "--scales", "0.02",
            "--seeds", "1,2", "--schemes", "baseline,hdpat",
            "--jobs", "2", "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 cells (0 failed)" in out
        snapshot = json.loads(metrics.read_text())
        assert snapshot["sweep"]["jobs"]["executed"] == 4


# ----------------------------------------------------------------------
# Worker metrics merge and the progress heartbeat
# ----------------------------------------------------------------------
class TestWorkerMetrics:
    def test_execute_job_observed_matches_plain_execution(
        self, small_system_config
    ):
        from repro.analysis.sanitizers import result_digest
        from repro.exec import execute_job_observed

        job = make_job(small_system_config, "aes", **FAST)
        plain = execute_job(job)
        observed, wall, counters = execute_job_observed(job)
        assert result_digest(observed) == result_digest(plain)
        assert wall > 0
        assert counters["sim.events_processed"] > 0
        assert all(isinstance(v, int) for v in counters.values())

    def test_merge_counters_sums_and_prefixes(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.merge_counters({"sim.events_processed": 10}, prefix="workers.")
        registry.merge_counters({"sim.events_processed": 5}, prefix="workers.")
        assert registry.counter(
            "workers.sim.events_processed"
        ).to_value() == 15

    def test_merge_counters_noop_when_disabled(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=False)
        registry.merge_counters({"a": 1})
        assert len(registry) == 0

    def test_executor_absorbs_worker_counters_inline(
        self, small_system_config
    ):
        executor = SweepExecutor(jobs=1, worker_metrics=True)
        jobs = [
            make_job(small_system_config, "aes", scale=0.02, seed=seed)
            for seed in (1, 2)
        ]
        results = executor.map(jobs)
        assert len(results) == 2
        merged = executor.registry.counter("workers.sim.events_processed")
        assert merged.to_value() > 0
        assert executor.registry.counter(
            "sweep.events_processed"
        ).to_value() == merged.to_value()

    def test_executor_absorbs_worker_counters_from_pool(
        self, small_system_config
    ):
        executor = SweepExecutor(jobs=2, worker_metrics=True)
        jobs = [
            make_job(small_system_config, "aes", scale=0.02, seed=seed)
            for seed in (1, 2)
        ]
        results = executor.map(jobs)
        assert len(results) == 2
        assert executor.registry.counter(
            "workers.sim.events_processed"
        ).to_value() > 0


class TestHeartbeat:
    def test_heartbeat_records_progress(self, small_system_config, tmp_path):
        from repro.exec import read_heartbeats

        path = str(tmp_path / "hb.jsonl")
        executor = SweepExecutor(jobs=1, heartbeat=path, heartbeat_every=0.0)
        jobs = [
            make_job(small_system_config, "aes", scale=0.02, seed=seed)
            for seed in (1, 2)
        ]
        executor.map(jobs)
        executor.finish_heartbeat()
        records = read_heartbeats(path)
        assert records[0]["total"] == 2
        final = records[-1]
        assert final["phase"] == "finished"
        assert final["done"] == 2 and final["failed"] == 0
        assert final["jobs_per_sec"] > 0
        assert final["eta_seconds"] is None

    def test_heartbeat_throttles(self, tmp_path):
        from repro.exec.progress import SweepHeartbeat

        hb = SweepHeartbeat(str(tmp_path / "hb.jsonl"), every=3600.0)
        assert hb.beat({"total": 1, "done": 0}) is True
        assert hb.beat({"total": 1, "done": 1}) is False
        assert hb.beat({"total": 1, "done": 1}, force=True) is True

    def test_heartbeat_counts_events_with_worker_metrics(
        self, small_system_config, tmp_path
    ):
        from repro.exec import read_heartbeats

        path = str(tmp_path / "hb.jsonl")
        executor = SweepExecutor(
            jobs=1, worker_metrics=True,
            heartbeat=path, heartbeat_every=0.0,
        )
        executor.map([make_job(small_system_config, "aes", **FAST)])
        executor.finish_heartbeat()
        assert read_heartbeats(path)[-1]["events_per_sec"] > 0

    def test_progress_flag_writes_heartbeat(self, tmp_path, capsys):
        from repro.exec import read_heartbeats

        path = tmp_path / "hb.jsonl"
        assert main([
            "fig03", "--scale", "0.02", "--benchmarks", "aes",
            "--jobs", "1", "--progress", str(path), "--worker-metrics",
        ]) == 0
        records = read_heartbeats(str(path))
        assert records and records[-1]["phase"] == "finished"
        assert records[-1]["done"] >= 1
